package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// OperatorSeam confines concrete storage knowledge to the storage seam.
// With the matrix-free mode, a solver-stack level operator may be an
// assembled *sparse.CSR/BSR (or their f32 variants) or an
// element-by-element operator with no stored entries at all; code that
// type-asserts or type-switches on the concrete matrix types silently
// excludes the matrix-free path (or panics on it). Outside the seam —
// the sparse package itself and the multigrid level plumbing, which by
// design choose per-level storage — consumers must program against the
// sparse capability interfaces (RowScanner, BlockDiagonaler, Sweeper,
// GalerkinAssembler, ...) or go through the sanctioned sparse.TryCSR /
// sparse.AutoBlockOp helpers.
type OperatorSeam struct {
	// SparsePath is the import path of the sparse package (default
	// prometheus/internal/sparse; fixtures override it).
	SparsePath string
	// Allowed lists the package paths permitted to inspect concrete
	// storage (default: the sparse package itself and
	// prometheus/internal/multigrid). A path also covers its
	// sub-packages.
	Allowed []string
}

// concreteStorageTypes are the storage types the seam protects.
var concreteStorageTypes = []string{"CSR", "BSR", "CSR32", "BSR32"}

// Name implements Rule.
func (OperatorSeam) Name() string { return "operator-seam" }

// Check implements Rule.
func (r OperatorSeam) Check(pkg *Package) []Issue {
	spath := r.SparsePath
	if spath == "" {
		spath = "prometheus/internal/sparse"
	}
	allowed := r.Allowed
	if allowed == nil {
		allowed = []string{spath, "prometheus/internal/multigrid"}
	}
	for _, p := range allowed {
		if pkg.Path == p || strings.HasPrefix(pkg.Path, p+"/") {
			return nil
		}
	}
	var out []Issue
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.TypeAssertExpr:
				if x.Type == nil { // x.(type) inside a type switch
					return true
				}
				if name := r.storageType(pkg, spath, x.Type); name != "" {
					out = append(out, issue(pkg, x, r.Name(), Error,
						"type assertion on concrete storage type *sparse.%s outside the storage seam; use a sparse capability interface or sparse.TryCSR", name))
				}
			case *ast.TypeSwitchStmt:
				for _, c := range x.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, te := range cc.List {
						if name := r.storageType(pkg, spath, te); name != "" {
							out = append(out, issue(pkg, te, r.Name(), Error,
								"type switch case on concrete storage type *sparse.%s outside the storage seam; use a sparse capability interface or sparse.TryCSR", name))
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// storageType returns the concrete storage type name the expression
// denotes (possibly behind a pointer), or "" if it is not one.
func (r OperatorSeam) storageType(pkg *Package, spath string, te ast.Expr) string {
	t := pkg.Info.Types[te].Type
	if t == nil {
		return ""
	}
	for _, name := range concreteStorageTypes {
		if isNamedFrom(t, spath, name) {
			return name
		}
	}
	// isNamedFrom unwraps pointers itself, but alias spellings
	// (prometheus.CSR) resolve through types.Alias; unalias and retry.
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	t = types.Unalias(t)
	for _, name := range concreteStorageTypes {
		if isNamedFrom(t, spath, name) {
			return name
		}
	}
	return ""
}
