package lint

import "testing"

// newTestCtx returns a fresh arithmetic context with an empty fact set.
func newTestCtx() *actx {
	return &actx{tab: newSymtab(), facts: &factSet{}}
}

func TestAffineRingOps(t *testing.T) {
	cx := newTestCtx()
	a := cx.tab.anonSym(false)
	b := cx.tab.anonSym(false)

	// (a + 2) + (b - 2) = a + b
	sum := cx.add(cx.add(aSym(a), aConst(2)), cx.sub(aSym(b), aConst(2)))
	if !cx.equal(sum, cx.add(aSym(a), aSym(b))) {
		t.Fatalf("constant terms did not cancel: %s", cx.describe(sum))
	}

	// 3·(a + b) - 3a - 3b = 0
	zero := cx.sub(cx.scale(cx.add(aSym(a), aSym(b)), 3),
		cx.add(cx.scale(aSym(a), 3), cx.scale(aSym(b), 3)))
	if zero == nil || !zero.isZero() {
		t.Fatalf("distributed scale did not cancel: %s", cx.describe(zero))
	}

	// (a + 1)·(b + 2) = ab + 2a + b + 2
	prod := cx.mul(cx.add(aSym(a), aConst(1)), cx.add(aSym(b), aConst(2)))
	want := cx.add(cx.mul(aSym(a), aSym(b)),
		cx.add(cx.scale(aSym(a), 2), cx.add(aSym(b), aConst(2))))
	if !cx.equal(prod, want) {
		t.Fatalf("product mismatch: got %s want %s", cx.describe(prod), cx.describe(want))
	}

	// Degree cap: a·b times a exceeds degree 2 and must widen to top.
	if cx.mul(cx.mul(aSym(a), aSym(b)), aSym(a)) != nil {
		t.Fatal("degree-3 product should be top")
	}
}

func TestAffineDivMod(t *testing.T) {
	cx := newTestCtx()
	a := cx.tab.anonSym(false)
	b := cx.tab.anonSym(false)

	// Exact term-wise division: (2a + 4) / 2 = a + 2.
	q := cx.div(cx.add(cx.scale(aSym(a), 2), aConst(4)), aConst(2))
	if !cx.equal(q, cx.add(aSym(a), aConst(2))) {
		t.Fatalf("exact division failed: %s", cx.describe(q))
	}

	// Exact division makes the remainder vanish.
	if r := cx.mod(cx.scale(aSym(a), 6), aConst(3)); r == nil || !r.isZero() {
		t.Fatalf("6a %% 3 should be 0, got %s", cx.describe(r))
	}

	// Division by constant zero is top, not a panic.
	if cx.div(aSym(a), aConst(0)) != nil {
		t.Fatal("division by zero should be top")
	}

	// Inexact divisions intern: the same quotient written twice is the
	// same symbol, so the difference cancels.
	d1 := cx.div(aSym(a), aSym(b))
	d2 := cx.div(aSym(a), aSym(b))
	if diff := cx.sub(d1, d2); diff == nil || !diff.isZero() {
		t.Fatalf("equal quotients did not unify: %s", cx.describe(diff))
	}
}

func TestAffineQuotientCollapse(t *testing.T) {
	// Constant divisor: with lo ≡ 0 (mod 3), 3·(lo/3) collapses to lo.
	cx := newTestCtx()
	lo := cx.tab.anonSym(true)
	cx.addModZero(aSym(lo), aConst(3))
	q := cx.div(aSym(lo), aConst(3))
	if got := cx.scale(q, 3); !cx.equal(got, aSym(lo)) {
		t.Fatalf("3*(lo/3) = %s, want lo", cx.describe(got))
	}

	// Symbolic divisor: with lo ≡ 0 (mod b), (lo/b)·b collapses to lo.
	cx = newTestCtx()
	lo = cx.tab.anonSym(true)
	b := cx.tab.anonSym(true)
	cx.addModZero(aSym(lo), aSym(b))
	q = cx.div(aSym(lo), aSym(b))
	if got := cx.mul(q, aSym(b)); !cx.equal(got, aSym(lo)) {
		t.Fatalf("(lo/b)*b = %s, want lo", cx.describe(got))
	}

	// Without the divisibility fact the product must stay symbolic:
	// truncated division loses the remainder.
	cx = newTestCtx()
	lo = cx.tab.anonSym(true)
	b = cx.tab.anonSym(true)
	q = cx.div(aSym(lo), aSym(b))
	if got := cx.mul(q, aSym(b)); cx.equal(got, aSym(lo)) {
		t.Fatal("(lo/b)*b collapsed without a divisibility fact")
	}

	// Equality facts connect: with b == 3 and lo ≡ 0 (mod b), the
	// constant-divisor rewrite 3·(lo/3) = lo still fires.
	cx = newTestCtx()
	lo = cx.tab.anonSym(true)
	b = cx.tab.anonSym(true)
	cx.addEq(b, aConst(3))
	cx.addModZero(aSym(lo), aSym(b))
	q = cx.div(aSym(lo), aConst(3))
	if got := cx.scale(q, 3); !cx.equal(got, aSym(lo)) {
		t.Fatalf("3*(lo/3) under b==3 = %s, want lo", cx.describe(got))
	}
}

func TestAffineEqualityCanon(t *testing.T) {
	cx := newTestCtx()
	b := cx.tab.anonSym(false)
	x := cx.tab.anonSym(false)
	cx.addEq(b, aConst(3))

	if !cx.equal(aSym(b), aConst(3)) {
		t.Fatal("b == 3 fact not applied")
	}
	// Substitution reaches inside quadratic monomials: b·x = 3x.
	if !cx.equal(cx.mul(aSym(b), aSym(x)), cx.scale(aSym(x), 3)) {
		t.Fatal("b*x != 3x under b == 3")
	}
}

func TestAffineProvableNonneg(t *testing.T) {
	cx := newTestCtx()
	a := cx.tab.anonSym(false)
	n := cx.tab.anonSym(true)
	m := cx.tab.anonSym(true)

	if !cx.provableNonneg(aConst(0)) || cx.provableNonneg(aConst(-1)) {
		t.Fatal("constant signs misjudged")
	}
	if !cx.provableNonneg(aSym(n)) {
		t.Fatal("nonneg-by-construction symbol not provable")
	}
	if cx.provableNonneg(aSym(a)) {
		t.Fatal("unconstrained symbol should not be provably nonneg")
	}

	// Lower-bound facts shift by constant offsets: a >= 2 proves
	// a - 2 >= 0 but not a - 3 >= 0.
	cx.addLB(aSym(a), 2)
	if !cx.provableNonneg(cx.sub(aSym(a), aConst(2))) {
		t.Fatal("a - 2 not provable under a >= 2")
	}
	if cx.provableNonneg(cx.sub(aSym(a), aConst(3))) {
		t.Fatal("a - 3 provable under a >= 2")
	}

	// Quotients and remainders of nonnegative operands are nonnegative.
	if !cx.provableNonneg(cx.div(aSym(n), aSym(m))) {
		t.Fatal("n/m not provable with nonneg operands")
	}
	if !cx.provableNonneg(cx.mod(aSym(n), aSym(m))) {
		t.Fatal("n%m not provable with nonneg operands")
	}

	// Positive combinations of nonneg monomials, including degree 2.
	if !cx.provableNonneg(cx.add(cx.mul(aSym(n), aSym(m)), cx.scale(aSym(n), 2))) {
		t.Fatal("n*m + 2n not provable")
	}
	if cx.provableNonneg(cx.sub(aSym(n), aSym(m))) {
		t.Fatal("n - m should not be provable")
	}
}

func TestAffineProjectTelescope(t *testing.T) {
	cx := newTestCtx()
	b := cx.tab.anonSym(true)
	nw := cx.tab.anonSym(true)
	i := cx.tab.loopSym(aConst(0), aSym(nw), true)

	// Block-panel write y[i*b : i*b+b) over i in [0, nw): successive
	// chunks tile, so the union telescopes to [0, nw*b).
	lo := cx.mul(aSym(i), aSym(b))
	v := ivl{lo: lo, hi: cx.add(lo, aSym(b))}
	got := projectLoop(cx, v, i)
	if !cx.equal(got.lo, aConst(0)) || !cx.equal(got.hi, cx.mul(aSym(nw), aSym(b))) {
		t.Fatalf("telescoped to [%s, %s), want [0, nw*b)", cx.describe(got.lo), cx.describe(got.hi))
	}

	// A form that never mentions the loop symbol projects to itself.
	c := ivl{lo: aSym(b), hi: cx.add(aSym(b), aConst(1))}
	if got := projectLoop(cx, c, i); !cx.equal(got.lo, c.lo) || !cx.equal(got.hi, c.hi) {
		t.Fatal("loop-free interval should project unchanged")
	}

	// Unknown iteration bounds make every projection top.
	u := cx.tab.loopSym(nil, nil, false)
	v = ivl{lo: aSym(u), hi: cx.add(aSym(u), aConst(1))}
	if got := projectLoop(cx, v, u); got.lo != nil || got.hi != nil {
		t.Fatal("projection over unbounded loop should be top")
	}
}

func TestAffineProjectConstCoeff(t *testing.T) {
	cx := newTestCtx()
	d := cx.tab.anonSym(true)
	n := cx.tab.anonSym(true)
	i := cx.tab.loopSym(aConst(0), aSym(n), true)

	// Strided scalar write y[3i+d] over i in [0, n): both endpoints are
	// monotone, so the extremes bound the union: [d, 3(n-1)+d+1).
	lo := cx.add(cx.scale(aSym(i), 3), aSym(d))
	v := ivl{lo: lo, hi: cx.add(lo, aConst(1))}
	got := projectLoop(cx, v, i)
	wantHi := cx.add(cx.scale(aSym(n), 3), cx.sub(aSym(d), aConst(2)))
	if !cx.equal(got.lo, aSym(d)) || !cx.equal(got.hi, wantHi) {
		t.Fatalf("projected to [%s, %s), want [d, 3n+d-2)", cx.describe(got.lo), cx.describe(got.hi))
	}

	// Negative coefficient flips which extreme bounds which endpoint:
	// y[n-i] over i in [0, m) unions to [n-(m-1), n+1).
	m := cx.tab.anonSym(true)
	j := cx.tab.loopSym(aConst(0), aSym(m), true)
	lo = cx.sub(aSym(n), aSym(j))
	v = ivl{lo: lo, hi: cx.add(lo, aConst(1))}
	got = projectLoop(cx, v, j)
	wantLo := cx.add(cx.sub(aSym(n), aSym(m)), aConst(1))
	if !cx.equal(got.lo, wantLo) || !cx.equal(got.hi, cx.add(aSym(n), aConst(1))) {
		t.Fatalf("projected to [%s, %s), want [n-m+1, n+1)", cx.describe(got.lo), cx.describe(got.hi))
	}

	// Quadratic dependence on the loop symbol has no sound projection.
	lo = cx.mul(aSym(i), aSym(i))
	v = ivl{lo: lo, hi: cx.add(lo, aConst(1))}
	if got := projectLoop(cx, v, i); got.lo != nil || got.hi != nil {
		t.Fatal("quadratic loop dependence should project to top")
	}
}

func TestAffineContains(t *testing.T) {
	cx := newTestCtx()
	n := cx.tab.anonSym(true)

	if !cx.contains(ivl{lo: aConst(2), hi: aConst(5)}, aConst(0), aConst(8)) {
		t.Fatal("[2,5) should be inside [0,8)")
	}
	if cx.contains(ivl{lo: aConst(2), hi: aConst(9)}, aConst(0), aConst(8)) {
		t.Fatal("[2,9) should not be inside [0,8)")
	}
	// Symbolic: [n, n+2) ⊆ [0, n+5) needs n >= 0 (by construction here).
	inner := ivl{lo: aSym(n), hi: cx.add(aSym(n), aConst(2))}
	if !cx.contains(inner, aConst(0), cx.add(aSym(n), aConst(5))) {
		t.Fatal("[n,n+2) should be inside [0,n+5)")
	}
	// Top intervals are never contained.
	if cx.contains(ivl{}, aConst(0), aConst(8)) {
		t.Fatal("top interval should not be contained")
	}
}

// buildAffineExpr consumes fuzz bytes to build one random affine index
// expression two ways at once: as a symbolic form through the engine's
// own operations, and as a concrete evaluator that mirrors Go's integer
// semantics directly. Divergence between the two is an engine bug.
func buildAffineExpr(cx *actx, data []byte, pos *int, depth int, base []symID) (*aform, func(func(symID) (int64, bool)) (int64, bool)) {
	next := func() byte {
		if *pos >= len(data) {
			return 0
		}
		b := data[*pos]
		*pos++
		return b
	}
	op := next()
	if depth == 0 {
		op %= 2 // leaves only
	} else {
		op %= 7
	}
	switch op {
	case 0: // small constant
		c := int64(int8(next())) % 4
		return aConst(c), func(func(symID) (int64, bool)) (int64, bool) { return c, true }
	case 1: // base variable
		s := base[int(next())%len(base)]
		return aSym(s), func(val func(symID) (int64, bool)) (int64, bool) { return val(s) }
	}
	lf, le := buildAffineExpr(cx, data, pos, depth-1, base)
	rf, re := buildAffineExpr(cx, data, pos, depth-1, base)
	bin := func(form *aform, f func(l, r int64) (int64, bool)) (*aform, func(func(symID) (int64, bool)) (int64, bool)) {
		return form, func(val func(symID) (int64, bool)) (int64, bool) {
			l, ok := le(val)
			if !ok {
				return 0, false
			}
			r, ok := re(val)
			if !ok {
				return 0, false
			}
			return f(l, r)
		}
	}
	switch op {
	case 2:
		return bin(cx.add(lf, rf), func(l, r int64) (int64, bool) { return l + r, true })
	case 3:
		return bin(cx.sub(lf, rf), func(l, r int64) (int64, bool) { return l - r, true })
	case 4:
		return bin(cx.mul(lf, rf), func(l, r int64) (int64, bool) { return l * r, true })
	case 5:
		return bin(cx.div(lf, rf), func(l, r int64) (int64, bool) {
			if r == 0 {
				return 0, false
			}
			return l / r, true
		})
	default:
		return bin(cx.mod(lf, rf), func(l, r int64) (int64, bool) {
			if r == 0 {
				return 0, false
			}
			return l % r, true
		})
	}
}

// FuzzOwnedRange cross-checks the symbolic engine against concrete
// execution: a random affine index expression over a plain variable, a
// nonnegative variable, and a loop induction variable must (1) evaluate
// — via evalForm, resolving derived quotient/remainder symbols — to
// exactly the value the source expression computes, and (2) when used as
// a per-iteration write interval, stay inside whatever interval
// projectLoop claims covers the whole loop. This is the fuzzed analogue
// of the ownership verifier's core soundness argument: every concrete
// write an analyzed loop performs lands inside the symbolic range the
// analysis certifies.
func FuzzOwnedRange(f *testing.F) {
	f.Add([]byte{3, 2, 3, 2, 4, 1, 2, 1, 0, 0, 2})             // i*b-ish shapes
	f.Add([]byte{5, 250, 4, 3, 2, 4, 1, 2, 1, 1, 2, 1, 0, 5})  // strided with offset
	f.Add([]byte{4, 1, 3, 1, 5, 1, 2, 1, 1, 0, 3, 1, 0, 9, 7}) // quotients
	f.Add([]byte{2, 3, 2, 2, 6, 1, 2, 1, 1, 0, 2, 1, 2, 8})    // remainders
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		cx := newTestCtx()
		hi := int64(data[0]%6) + 1 // loop runs over [0, hi)
		av := int64(int8(data[1])) % 6
		nv := int64(data[2] % 6)
		w := int64(data[3]%3) + 1 // per-iteration write width
		a := cx.tab.anonSym(false)
		n := cx.tab.anonSym(true)
		i := cx.tab.loopSym(aConst(0), aConst(hi), true)

		pos := 4
		form, eval := buildAffineExpr(cx, data, &pos, 4, []symID{a, n, i})
		if form == nil {
			return // widened to top: the engine makes no claim
		}
		val := func(iv int64) func(symID) (int64, bool) {
			return func(s symID) (int64, bool) {
				switch s {
				case a:
					return av, true
				case n:
					return nv, true
				case i:
					return iv, true
				}
				return 0, false
			}
		}

		// (1) Oracle: wherever the source expression is defined, the
		// symbolic form must evaluate to the same value.
		for iv := int64(0); iv < hi; iv++ {
			cv, cok := eval(val(iv))
			if !cok {
				continue // division by zero: no claim to check
			}
			sv, sok := cx.evalForm(form, val(iv))
			if !sok {
				t.Fatalf("form %s undefined where source evaluates to %d (a=%d n=%d i=%d)",
					cx.describe(form), cv, av, nv, iv)
			}
			if sv != cv {
				t.Fatalf("form %s = %d, source = %d (a=%d n=%d i=%d)",
					cx.describe(form), sv, cv, av, nv, iv)
			}
		}

		// (2) Projection soundness: every concrete iteration's write
		// interval [f(i), f(i)+w) must land inside the projected union.
		v := ivl{lo: form, hi: cx.add(form, aConst(w))}
		proj := projectLoop(cx, v, i)
		if proj.lo == nil || proj.hi == nil {
			return // top: the analysis would reject, which is always sound
		}
		for iv := int64(0); iv < hi; iv++ {
			fv, ok := cx.evalForm(form, val(iv))
			if !ok {
				continue
			}
			pl, okL := cx.evalForm(proj.lo, val(iv))
			ph, okH := cx.evalForm(proj.hi, val(iv))
			if !okL || !okH {
				continue
			}
			if fv < pl || fv+w > ph {
				t.Fatalf("iteration %d writes [%d, %d) outside projected [%d, %d); form=%s proj=[%s, %s)",
					iv, fv, fv+w, pl, ph, cx.describe(form), cx.describe(proj.lo), cx.describe(proj.hi))
			}
		}
	})
}
