package lint

import (
	"go/ast"
	"go/types"
)

// This file implements the loop-nesting dataflow analysis behind the
// hot-path rules. The model: a statement is "hot" when it executes once
// per solver iteration rather than once per setup. Hot code is seeded by
// the per-iteration entry points (kernel interface methods such as
// Smooth, Apply, MulVec — functions invoked from the iteration loop of
// another package, often through an interface) and grown two ways:
//
//   - a loop becomes hot when its body calls a kernel entry point or an
//     already-hot function: a loop that performs SpMV or smoothing per
//     trip IS the solver iteration loop, wherever it lives;
//   - a function (or closure) becomes hot when it is called from hot
//     code in the same package.
//
// Setup loops — assembling operators, building hierarchies, factoring
// blocks — call no kernel entry points and stay cold, so constructors
// may allocate freely while the steady-state paths may not.
//
// Blocks guarded by `if check.Enabled` and the arguments of panic calls
// are excluded from hot regions: debug invariants and failure paths are
// allowed to allocate.

// DefaultHotRoots are the per-iteration kernel entry points: any
// function or method with one of these names, defined in a kernel
// package, executes once per solver iteration (they are dispatched from
// iteration loops, usually through the Smoother/Preconditioner
// interfaces or the Comm hot protocol).
func DefaultHotRoots() []string {
	return []string{
		"MulVec", "MulVecRange", "Residual", // SpMV kernels (CSR and BSR)
		"Smooth", "Apply", // smoother / preconditioner interfaces
		"Exchange", "Dot", "MulVecBSR", // halo protocol (scalar + blocked)
		"Send", "Recv", "RecvAs", "Barrier", // point-to-point + barrier
		"AllReduceSum", "AllReduceIntSum", "AllReduceMax", // typed collectives
		"Dispatch", // shared-memory worker-pool fan-out
	}
}

// KernelPackages is the package set whose loops and entry points the
// hot-path rules reason about — the per-iteration compute and
// communication kernels of the solver.
func KernelPackages() []string {
	return []string{
		"prometheus/internal/sparse",
		"prometheus/internal/smooth",
		"prometheus/internal/krylov",
		"prometheus/internal/multigrid",
		"prometheus/internal/par",
		"prometheus/internal/pool",
	}
}

// hotUnit is one analyzable function body: a declared function, a
// closure bound to a local variable, or an anonymous literal.
type hotUnit struct {
	body *ast.BlockStmt
	hot  bool // whole body executes per iteration
}

// hotAnalysis is the per-package result of the loop-nesting dataflow.
type hotAnalysis struct {
	pkg     *Package
	kernels []string        // package path prefixes forming the kernel set
	roots   map[string]bool // entry-point function names

	checkPath string // import path of the invariant package (check.Enabled)

	// units keys every function body by its *ast.FuncDecl or
	// *ast.FuncLit node; objToUnit resolves call targets (declared
	// functions and closure-bound local variables) to their unit.
	units     map[ast.Node]*hotUnit
	objToUnit map[types.Object]ast.Node
	// hotLoops marks loop statements whose body is hot.
	hotLoops map[ast.Stmt]bool
	// hotDecl marks objects declared inside hot code (per-iteration
	// locals; appending to such a slice is a fresh allocation).
	hotDecl map[types.Object]bool

	changed bool
}

// analyzeHot runs the fixpoint for one package. checkPath names the
// invariant package whose Enabled guard exempts a block (normally
// prometheus/internal/check).
func analyzeHot(pkg *Package, kernels, roots []string, checkPath string) *hotAnalysis {
	h := &hotAnalysis{
		pkg:       pkg,
		kernels:   kernels,
		checkPath: checkPath,
		roots:     make(map[string]bool, len(roots)),
		units:     make(map[ast.Node]*hotUnit),
		objToUnit: make(map[types.Object]ast.Node),
		hotLoops:  make(map[ast.Stmt]bool),
		hotDecl:   make(map[types.Object]bool),
	}
	for _, r := range roots {
		h.roots[r] = true
	}
	h.collectUnits()
	// Fixpoint: each pass may promote loops (body calls hot things) and
	// callees (called from hot code); both monotone, so iteration ends.
	for {
		h.changed = false
		for _, u := range h.units {
			h.walk(u.body, u.hot)
		}
		if !h.changed {
			break
		}
	}
	return h
}

// collectUnits adopts the shared function index (spmd.go), seeding
// hotness at kernel entry points.
func (h *hotAnalysis) collectUnits() {
	ix := indexFuncs(h.pkg)
	h.objToUnit = ix.objToUnit
	for node, body := range ix.bodies {
		u := &hotUnit{body: body}
		if d, ok := node.(*ast.FuncDecl); ok {
			u.hot = h.roots[d.Name.Name]
		}
		h.units[node] = u
	}
}

// inKernelSet reports whether an import path belongs to the kernel set.
func (h *hotAnalysis) inKernelSet(path string) bool {
	return pathInSet(path, h.kernels)
}

// calleeObj resolves the called object through the shared resolver
// (spmd.go): a *types.Func for ordinary and interface calls, or the
// bound-closure variable for local closures.
func (h *hotAnalysis) calleeObj(call *ast.CallExpr) types.Object {
	return calleeObject(h.pkg, call)
}

// isHotCall reports whether the call invokes a kernel entry point (by
// name, resolved into the kernel package set — including interface
// methods) or an already-hot function or closure of this package.
func (h *hotAnalysis) isHotCall(call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		u := h.units[lit]
		return u != nil && u.hot
	}
	obj := h.calleeObj(call)
	if obj == nil {
		return false
	}
	if fn, ok := obj.(*types.Func); ok {
		if h.roots[fn.Name()] && fn.Pkg() != nil && h.inKernelSet(fn.Pkg().Path()) {
			return true
		}
	}
	if key, ok := h.objToUnit[obj]; ok {
		return h.units[key].hot
	}
	return false
}

// markCallee promotes the target of a call made from hot code.
func (h *hotAnalysis) markCallee(call *ast.CallExpr) {
	var key ast.Node
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		key = lit // immediately-invoked literal runs inline: hot too
	} else {
		obj := h.calleeObj(call)
		if obj == nil {
			return
		}
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != h.pkg.Types {
			// Same-package functions only: other packages are analyzed
			// in their own right (with their own entry points).
			return
		}
		k, ok := h.objToUnit[obj]
		if !ok {
			return
		}
		key = k
	}
	if u := h.units[key]; u != nil && !u.hot {
		u.hot = true
		h.changed = true
	}
}

// isCheckGuard reports whether the if-condition is the check.Enabled
// debug gate (possibly conjoined with more conditions).
func (h *hotAnalysis) isCheckGuard(cond ast.Expr) bool {
	return isEnabledGuard(h.pkg, cond, h.checkPath)
}

// isEnabledGuard reports whether cond references the Enabled constant of
// the invariant package at checkPath.
func isEnabledGuard(pkg *Package, cond ast.Expr, checkPath string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Enabled" {
			return true
		}
		if obj := pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == checkPath {
			found = true
			return false
		}
		return true
	})
	return found
}

// isPanicCall reports whether the call is the predeclared panic.
func (h *hotAnalysis) isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, builtin := h.pkg.Info.Uses[id].(*types.Builtin)
	return builtin
}

// traverse walks one function body propagating hotness. When emit is
// nil it runs in analysis mode, recording promotions into the fixpoint;
// otherwise it reports every hot node to emit.
func (h *hotAnalysis) traverse(body *ast.BlockStmt, hot bool, emit func(ast.Node)) {
	var visit func(n ast.Node, hot bool)
	visit = func(n ast.Node, hot bool) {
		if n == nil {
			return
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			// Every literal is its own unit; its body is walked with the
			// unit's hotness, not the enclosing scope's. The literal
			// itself, however, is a closure creation at this site.
			if hot && emit != nil {
				emit(x)
			}
			return
		case *ast.IfStmt:
			if h.isCheckGuard(x.Cond) {
				// Debug-invariant block: cold by definition; the
				// else-branch (if any) keeps the enclosing hotness.
				if x.Else != nil {
					visit(x.Else, hot)
				}
				return
			}
		case *ast.ForStmt, *ast.RangeStmt:
			loop := n.(ast.Stmt)
			lbody := loopBody(loop)
			if emit == nil && !hot && !h.hotLoops[loop] && h.loopTriggersHot(lbody) {
				h.hotLoops[loop] = true
				h.changed = true
			}
			childHot := hot || h.hotLoops[loop]
			switch l := loop.(type) {
			case *ast.ForStmt:
				visit(l.Init, hot)
				visit(l.Cond, hot)
				visit(l.Post, childHot)
			case *ast.RangeStmt:
				visit(l.X, hot)
				if childHot && emit == nil {
					h.recordDecl(l.Key)
					h.recordDecl(l.Value)
				}
			}
			visitChildren(lbody, childHot, visit)
			return
		case *ast.CallExpr:
			if h.isPanicCall(x) {
				return // failure paths may allocate
			}
			if hot {
				if emit == nil {
					h.markCallee(x)
				} else {
					emit(x)
				}
			}
			if _, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				// Immediately-invoked literal: not a closure creation.
				// Its body is walked as its own unit; visit only args.
				for _, a := range x.Args {
					visit(a, hot)
				}
				return
			}
			visitChildren(x, hot, visit)
			return
		case *ast.AssignStmt:
			if hot && emit == nil && x.Tok.String() == ":=" {
				for _, lhs := range x.Lhs {
					h.recordDecl(lhs)
				}
			}
		case *ast.DeclStmt:
			if hot && emit == nil {
				ast.Inspect(x, func(c ast.Node) bool {
					if _, ok := c.(*ast.FuncLit); ok {
						return false
					}
					if id, ok := c.(*ast.Ident); ok {
						h.recordDecl(id)
					}
					return true
				})
			}
		}
		if hot && emit != nil {
			emit(n)
		}
		visitChildren(n, hot, visit)
	}
	visitChildren(body, hot, visit)
}

// walk is the analysis-mode traversal used by the fixpoint.
func (h *hotAnalysis) walk(body *ast.BlockStmt, hot bool) { h.traverse(body, hot, nil) }

// recordDecl marks an identifier expression's object as hot-declared.
func (h *hotAnalysis) recordDecl(e ast.Node) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if obj := h.pkg.Info.Defs[id]; obj != nil {
		h.hotDecl[obj] = true
	}
}

// loopTriggersHot reports whether the loop body (lexically, ignoring
// nested closures and debug guards) calls a kernel entry point or a hot
// function — the mark of a solver iteration loop.
func (h *hotAnalysis) loopTriggersHot(body *ast.BlockStmt) bool {
	found := false
	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		if n == nil || found {
			return
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.IfStmt:
			if h.isCheckGuard(x.Cond) {
				scan(x.Else)
				return
			}
		case *ast.CallExpr:
			if h.isPanicCall(x) {
				return
			}
			if h.isHotCall(x) {
				found = true
				return
			}
		}
		visitChildren(n, false, func(c ast.Node, _ bool) { scan(c) })
	}
	scan(body)
	return found
}

// HotRegions visits every statement and expression of the package that
// executes per iteration, invoking fn once per hot node.
func (h *hotAnalysis) HotRegions(fn func(n ast.Node)) {
	for _, u := range h.units {
		h.traverse(u.body, u.hot, fn)
	}
}

// loopBody returns the body block of a for or range statement.
func loopBody(loop ast.Stmt) *ast.BlockStmt {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// visitChildren applies visit to every direct child of n with the given
// hotness, without revisiting n itself.
func visitChildren(n ast.Node, hot bool, visit func(ast.Node, bool)) {
	if n == nil {
		return
	}
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c == nil {
			return false
		}
		visit(c, hot)
		return false
	})
}
