package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the interprocedural SPMD protocol analysis behind
// the collective-uniformity rule. The model: rank bodies — function
// literals handed to Comm.Run/RunCounted — and any function taking a
// par.Rank execute on every rank simultaneously, and the collectives they
// reach (Barrier, the AllReduce family, AllGather, the reducer's all)
// must be reached by every rank the same number of times in the same
// order, or the runtime deadlocks. The analysis therefore proves that no
// collective is reachable under rank-dependent control flow:
//
//   - taint seeds at r.ID() (and the Rank.id field inside the par
//     package) and propagates through assignments, range bindings and
//     same-package call arguments to a fixpoint;
//   - collective RESULTS are uniform by construction — every rank gets
//     the same reduction value — so taint scanning skips collective call
//     subtrees; `if r.AllReduceIntSum(undone) == 0 { break }` is the
//     sanctioned uniform loop exit, not a violation;
//   - a branch is rank-dependent when its condition is tainted; a loop is
//     rank-dependent when its condition or range operand is tainted, or
//     when it can break/continue under a tainted branch (rank-dependent
//     trip count);
//   - a tainted branch that returns makes the remainder of its block
//     rank-dependent too (ranks that took the branch are gone);
//   - the check.Enabled debug gate is exempt, mirroring dataflow.go;
//   - calls are resolved through the shared function index: a call made
//     under rank-dependent control flow to a function that (transitively)
//     performs a collective is reported at the call site.
//
// The analysis is intentionally asymmetric with dataflow.go's hot-path
// analysis: hotness spreads down the call graph from entry points, while
// rank-dependence spreads down the control-flow tree within each body and
// crosses calls only through the has-collective summary.

// funcIndex is the shared function-body index used by both the hot-path
// dataflow and the SPMD analysis: every *ast.FuncDecl and *ast.FuncLit of
// the package keyed by its node, plus the resolution map from callable
// objects (declared functions and closure-bound local variables) to their
// unit node.
type funcIndex struct {
	bodies    map[ast.Node]*ast.BlockStmt
	objToUnit map[types.Object]ast.Node
}

// indexFuncs builds the function index for one package.
func indexFuncs(pkg *Package) *funcIndex {
	ix := &funcIndex{
		bodies:    make(map[ast.Node]*ast.BlockStmt),
		objToUnit: make(map[types.Object]ast.Node),
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body == nil {
					return true
				}
				ix.bodies[x] = x.Body
				if obj := pkg.Info.Defs[x.Name]; obj != nil {
					ix.objToUnit[obj] = x
				}
			case *ast.FuncLit:
				if _, seen := ix.bodies[x]; !seen {
					ix.bodies[x] = x.Body
				}
			case *ast.AssignStmt:
				// exchange := func(...) {...} — bind the closure body to
				// the local variable so calls through it resolve.
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, rhs := range x.Rhs {
					lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
					if !ok {
						continue
					}
					id, ok := x.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := pkg.Info.Defs[id]
					if obj == nil {
						obj = pkg.Info.Uses[id]
					}
					if obj != nil {
						ix.objToUnit[obj] = lit
					}
				}
			}
			return true
		})
	}
	return ix
}

// calleeObject resolves the called object of a call expression: a
// *types.Func for ordinary, method and interface calls (including generic
// instantiations like RecvAs[T](...)), or the bound variable for calls
// through local closures.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fun.Sel]
	case *ast.IndexExpr:
		switch x := ast.Unparen(fun.X).(type) {
		case *ast.Ident:
			return pkg.Info.Uses[x]
		case *ast.SelectorExpr:
			return pkg.Info.Uses[x.Sel]
		}
	case *ast.IndexListExpr:
		switch x := ast.Unparen(fun.X).(type) {
		case *ast.Ident:
			return pkg.Info.Uses[x]
		case *ast.SelectorExpr:
			return pkg.Info.Uses[x.Sel]
		}
	}
	return nil
}

// collectiveNames are the par operations every rank must execute
// uniformly. "all" is the unexported typed-reducer method inside par
// itself; the rest are the public collective API.
var collectiveNames = map[string]bool{
	"Barrier":         true,
	"AllReduce":       true,
	"AllReduceSum":    true,
	"AllReduceIntSum": true,
	"AllReduceMax":    true,
	"AllGather":       true,
	"AllGatherAs":     true,
	"all":             true,
}

// spmdUnit is one analyzable function body in the SPMD call graph.
type spmdUnit struct {
	node          ast.Node // *ast.FuncDecl or *ast.FuncLit
	body          *ast.BlockStmt
	params        []types.Object
	isRoot        bool // rank body, or takes/receives a par.Rank
	hasCollective bool // performs a collective, directly or transitively
	reachable     bool
}

// name returns a human-readable unit name for diagnostics.
func (u *spmdUnit) name() string {
	if d, ok := u.node.(*ast.FuncDecl); ok {
		return d.Name.Name
	}
	return "function literal"
}

// spmdAnalysis is the per-package state of the SPMD protocol analysis.
type spmdAnalysis struct {
	pkg       *Package
	parPath   string
	checkPath string

	units     map[ast.Node]*spmdUnit
	objToUnit map[types.Object]ast.Node
	tainted   map[types.Object]bool
	changed   bool

	report func(n ast.Node, format string, args ...interface{})
	seen   map[token.Pos]bool
}

// analyzeSPMD runs the full analysis for one package and reports
// violations through report. It returns early when the package does not
// touch the par runtime.
func analyzeSPMD(pkg *Package, parPath, checkPath string, report func(n ast.Node, format string, args ...interface{})) {
	if !usesPackage(pkg, parPath) {
		return
	}
	a := &spmdAnalysis{
		pkg:       pkg,
		parPath:   parPath,
		checkPath: checkPath,
		units:     make(map[ast.Node]*spmdUnit),
		tainted:   make(map[types.Object]bool),
		seen:      make(map[token.Pos]bool),
	}
	a.report = func(n ast.Node, format string, args ...interface{}) {
		if a.seen[n.Pos()] {
			return
		}
		a.seen[n.Pos()] = true
		report(n, format, args...)
	}
	a.collectUnits()
	if !a.markRoots() {
		return
	}
	a.propagateTaint()
	a.propagateCollectives()
	a.markReachable()
	for _, f := range a.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if u := a.units[n]; u != nil && u.reachable {
				a.walkList(u.body.List, false)
			}
			return true
		})
	}
}

// usesPackage reports whether pkg is, or imports, the given path.
func usesPackage(pkg *Package, path string) bool {
	if pkg.Path == path || pkg.Types == nil {
		return pkg.Path == path
	}
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == path {
			return true
		}
	}
	return false
}

// collectUnits indexes every function body and records its parameter
// objects for interprocedural taint propagation.
func (a *spmdAnalysis) collectUnits() {
	ix := indexFuncs(a.pkg)
	a.objToUnit = ix.objToUnit
	for node, body := range ix.bodies {
		u := &spmdUnit{node: node, body: body}
		var ft *ast.FuncType
		switch d := node.(type) {
		case *ast.FuncDecl:
			ft = d.Type
		case *ast.FuncLit:
			ft = d.Type
		}
		if ft != nil && ft.Params != nil {
			for _, field := range ft.Params.List {
				for _, id := range field.Names {
					u.params = append(u.params, a.pkg.Info.Defs[id])
				}
			}
		}
		a.units[node] = u
	}
}

// isRankType reports whether t is par.Rank or *par.Rank.
func (a *spmdAnalysis) isRankType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Rank" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == a.parPath
}

// markRoots marks rank bodies (arguments of Comm.Run/RunCounted) and
// functions with a par.Rank parameter or receiver as SPMD roots. It
// reports whether any root exists.
func (a *spmdAnalysis) markRoots() bool {
	// Functions and methods operating on a Rank.
	for node, u := range a.units {
		var ft *ast.FuncType
		var recv *ast.FieldList
		switch d := node.(type) {
		case *ast.FuncDecl:
			ft, recv = d.Type, d.Recv
		case *ast.FuncLit:
			ft = d.Type
		}
		if recv != nil && len(recv.List) == 1 {
			if a.isRankType(a.pkg.Info.Types[recv.List[0].Type].Type) {
				u.isRoot = true
			}
		}
		if ft != nil && ft.Params != nil {
			for _, field := range ft.Params.List {
				if a.isRankType(a.pkg.Info.Types[field.Type].Type) {
					u.isRoot = true
				}
			}
		}
	}
	// Rank bodies: fn arguments of Comm.Run / Comm.RunCounted.
	for _, f := range a.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := resolvedCallee(a.pkg, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != a.parPath {
				return true
			}
			if fn.Name() != "Run" && fn.Name() != "RunCounted" {
				return true
			}
			switch arg := ast.Unparen(call.Args[0]).(type) {
			case *ast.FuncLit:
				if u := a.units[arg]; u != nil {
					u.isRoot = true
				}
			case *ast.Ident:
				if obj := a.pkg.Info.Uses[arg]; obj != nil {
					if node, ok := a.objToUnit[obj]; ok {
						a.units[node].isRoot = true
					}
				}
			}
			return true
		})
	}
	for _, u := range a.units {
		if u.isRoot {
			return true
		}
	}
	return false
}

// calleeUnit resolves a call to a same-package unit, or nil.
func (a *spmdAnalysis) calleeUnit(call *ast.CallExpr) *spmdUnit {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return a.units[lit]
	}
	obj := calleeObject(a.pkg, call)
	if obj == nil {
		return nil
	}
	if node, ok := a.objToUnit[obj]; ok {
		return a.units[node]
	}
	return nil
}

// isRankID reports whether the call is Rank.ID() on the par Rank type.
func (a *spmdAnalysis) isRankID(call *ast.CallExpr) bool {
	fn := resolvedCallee(a.pkg, call)
	if fn == nil || fn.Name() != "ID" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && a.isRankType(sig.Recv().Type())
}

// isCollectiveCall reports whether the call is a par collective, returning
// its name. The reducer method "all" only counts inside par itself.
func (a *spmdAnalysis) isCollectiveCall(call *ast.CallExpr) (string, bool) {
	fn := resolvedCallee(a.pkg, call)
	if fn == nil || !collectiveNames[fn.Name()] {
		return "", false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != a.parPath {
		return "", false
	}
	return fn.Name(), true
}

// exprTainted reports whether the expression is rank-dependent: it
// mentions a tainted variable, calls Rank.ID, or (inside par) reads the
// Rank.id field. Collective call subtrees are skipped — their results are
// uniform across ranks by construction.
func (a *spmdAnalysis) exprTainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	tainted := false
	ast.Inspect(e, func(n ast.Node) bool {
		if tainted {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if a.isRankID(x) {
				tainted = true
				return false
			}
			if _, ok := a.isCollectiveCall(x); ok {
				return false // uniform result: args may differ per rank
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == "id" && a.isRankType(a.pkg.Info.Types[x.X].Type) {
				tainted = true
				return false
			}
		case *ast.Ident:
			if obj := a.pkg.Info.Uses[x]; obj != nil && a.tainted[obj] {
				tainted = true
				return false
			}
		}
		return true
	})
	return tainted
}

// markObj adds an object to the taint set.
func (a *spmdAnalysis) markObj(obj types.Object) {
	if obj != nil && !a.tainted[obj] {
		a.tainted[obj] = true
		a.changed = true
	}
}

// markExpr taints the object behind a plain identifier target.
func (a *spmdAnalysis) markExpr(e ast.Expr) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	obj := a.pkg.Info.Defs[id]
	if obj == nil {
		obj = a.pkg.Info.Uses[id]
	}
	a.markObj(obj)
}

// propagateTaint runs the package-wide taint fixpoint over assignments,
// range bindings, value specs and same-package call arguments. Writes
// through indices or fields do not taint the container — conditions in
// SPMD code branch on scalar locals, and the coarser model would drown
// the rule in false positives.
func (a *spmdAnalysis) propagateTaint() {
	for {
		a.changed = false
		for _, f := range a.pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					anyTainted := false
					for _, r := range x.Rhs {
						if a.exprTainted(r) {
							anyTainted = true
							break
						}
					}
					if anyTainted {
						for _, l := range x.Lhs {
							a.markExpr(l)
						}
					}
				case *ast.RangeStmt:
					if a.exprTainted(x.X) {
						a.markExpr(x.Key)
						a.markExpr(x.Value)
					}
				case *ast.ValueSpec:
					anyTainted := false
					for _, v := range x.Values {
						if a.exprTainted(v) {
							anyTainted = true
							break
						}
					}
					if anyTainted {
						for _, id := range x.Names {
							a.markObj(a.pkg.Info.Defs[id])
						}
					}
				case *ast.CallExpr:
					if u := a.calleeUnit(x); u != nil {
						for i, arg := range x.Args {
							if i >= len(u.params) {
								break
							}
							if a.exprTainted(arg) {
								a.markObj(u.params[i])
							}
						}
					}
				}
				return true
			})
		}
		if !a.changed {
			break
		}
	}
}

// propagateCollectives computes the transitive has-collective summary.
func (a *spmdAnalysis) propagateCollectives() {
	for {
		changed := false
		for _, u := range a.units {
			if u.hasCollective {
				continue
			}
			found := false
			ast.Inspect(u.body, func(n ast.Node) bool {
				if found {
					return false
				}
				if lit, ok := n.(*ast.FuncLit); ok && lit != u.node {
					return false // nested literals are their own units
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if _, ok := a.isCollectiveCall(call); ok {
						found = true
						return false
					}
					if cu := a.calleeUnit(call); cu != nil && cu.hasCollective {
						found = true
						return false
					}
				}
				return true
			})
			if found {
				u.hasCollective = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// markReachable marks every unit reachable from the SPMD roots through
// same-package calls and lexical nesting.
func (a *spmdAnalysis) markReachable() {
	var mark func(u *spmdUnit)
	mark = func(u *spmdUnit) {
		if u == nil || u.reachable {
			return
		}
		u.reachable = true
		ast.Inspect(u.body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				// A literal nested in reachable code is analyzed as its
				// own unit (it is either invoked here or escapes to a
				// caller that will invoke it with the same rank).
				if x != u.node {
					mark(a.units[x])
					return false
				}
			case *ast.CallExpr:
				mark(a.calleeUnit(x))
			}
			return true
		})
	}
	for _, u := range a.units {
		if u.isRoot {
			mark(u)
		}
	}
}

// isCheckGuard reports the check.Enabled debug gate.
func (a *spmdAnalysis) isCheckGuard(cond ast.Expr) bool {
	return isEnabledGuard(a.pkg, cond, a.checkPath)
}

// walkList walks one statement list carrying the rank-dependence context;
// a tainted branch that returns taints the remainder of the block.
func (a *spmdAnalysis) walkList(list []ast.Stmt, ctx bool) {
	cur := ctx
	for _, s := range list {
		a.walkStmt(s, cur)
		if ifs, ok := s.(*ast.IfStmt); ok && !a.isCheckGuard(ifs.Cond) &&
			a.exprTainted(ifs.Cond) && containsReturn(ifs) {
			cur = true
		}
	}
}

// walkStmt dispatches on control flow, promoting the context under
// rank-dependent branches and loops, and scans all other statements for
// collective calls executed in the current context.
func (a *spmdAnalysis) walkStmt(s ast.Stmt, ctx bool) {
	switch x := s.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		a.walkList(x.List, ctx)
	case *ast.IfStmt:
		a.walkStmt(x.Init, ctx)
		a.walkExprNode(x.Cond, ctx)
		c := ctx
		if !a.isCheckGuard(x.Cond) && a.exprTainted(x.Cond) {
			c = true
		}
		a.walkStmt(x.Body, c)
		a.walkStmt(x.Else, c)
	case *ast.ForStmt:
		a.walkStmt(x.Init, ctx)
		a.walkExprNode(x.Cond, ctx)
		c := ctx || a.exprTainted(x.Cond) || a.taintedEscape(x.Body)
		a.walkStmt(x.Post, c)
		a.walkList(x.Body.List, c)
	case *ast.RangeStmt:
		a.walkExprNode(x.X, ctx)
		c := ctx || a.exprTainted(x.X) || a.taintedEscape(x.Body)
		a.walkList(x.Body.List, c)
	case *ast.SwitchStmt:
		a.walkStmt(x.Init, ctx)
		a.walkExprNode(x.Tag, ctx)
		base := ctx || (x.Tag != nil && a.exprTainted(x.Tag))
		for _, cl := range x.Body.List {
			cc, ok := cl.(*ast.CaseClause)
			if !ok {
				continue
			}
			c := base
			for _, e := range cc.List {
				a.walkExprNode(e, ctx)
				if a.exprTainted(e) {
					c = true
				}
			}
			a.walkList(cc.Body, c)
		}
	case *ast.TypeSwitchStmt:
		a.walkStmt(x.Init, ctx)
		a.walkStmt(x.Assign, ctx)
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				a.walkList(cc.Body, ctx)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				a.walkStmt(cc.Comm, ctx)
				a.walkList(cc.Body, ctx)
			}
		}
	case *ast.LabeledStmt:
		a.walkStmt(x.Stmt, ctx)
	default:
		// Assignment, expression, return, defer, go, send, inc/dec and
		// declaration statements contain no nested statements outside
		// function literals: scan them directly for calls.
		a.walkExprNode(s, ctx)
	}
}

// walkExprNode scans a non-control node for collective calls and for
// calls into collective-bearing units, reporting those executed under a
// rank-dependent context. Immediately-invoked function literals run
// inline with the current context; other literals are separate units.
func (a *spmdAnalysis) walkExprNode(n ast.Node, ctx bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				a.walkList(lit.Body.List, ctx)
				for _, arg := range x.Args {
					a.walkExprNode(arg, ctx)
				}
				return false
			}
			if ctx {
				if name, ok := a.isCollectiveCall(x); ok {
					a.report(x, "collective %s is reached under rank-dependent control flow; every rank must execute the same collective sequence", name)
				} else if u := a.calleeUnit(x); u != nil && u.hasCollective {
					a.report(x, "call to %s under rank-dependent control flow reaches a collective; every rank must execute the same collective sequence", u.name())
				}
			}
		}
		return true
	})
}

// taintedEscape reports whether the loop body can break or continue under
// a tainted branch — a rank-dependent trip count. Nested loops, switches
// and selects are skipped: their break/continue bind inner targets (a
// continue escaping through a nested switch is a known approximation).
func (a *spmdAnalysis) taintedEscape(body *ast.BlockStmt) bool {
	found := false
	var scan func(s ast.Stmt, ctx bool)
	scan = func(s ast.Stmt, ctx bool) {
		if found || s == nil {
			return
		}
		switch x := s.(type) {
		case *ast.BranchStmt:
			if ctx && (x.Tok == token.BREAK || x.Tok == token.CONTINUE) {
				found = true
			}
		case *ast.IfStmt:
			c := ctx || (!a.isCheckGuard(x.Cond) && a.exprTainted(x.Cond))
			scan(x.Body, c)
			scan(x.Else, c)
		case *ast.BlockStmt:
			for _, st := range x.List {
				scan(st, ctx)
			}
		case *ast.LabeledStmt:
			scan(x.Stmt, ctx)
		}
	}
	scan(body, false)
	return found
}

// containsReturn reports whether the if statement's branches contain a
// return outside nested function literals.
func containsReturn(ifs *ast.IfStmt) bool {
	found := false
	scan := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if found {
				return false
			}
			switch c.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				found = true
				return false
			}
			return true
		})
	}
	scan(ifs.Body)
	scan(ifs.Else)
	return found
}

// spmdIssuef adapts the analysis report callback to Issue construction.
func spmdIssuef(pkg *Package, rule string, out *[]Issue) func(n ast.Node, format string, args ...interface{}) {
	return func(n ast.Node, format string, args ...interface{}) {
		*out = append(*out, Issue{
			Pos:      pkg.Fset.Position(n.Pos()),
			Rule:     rule,
			Severity: Error,
			Msg:      fmt.Sprintf(format, args...),
		})
	}
}
