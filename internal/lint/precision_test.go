package lint

import "testing"

// laFixtureSrc is a minimal stand-in for internal/la's sanctioned
// precision boundary, type-checked under import path "la" so the
// precision rules can resolve the helpers in fixtures.
const laFixtureSrc = `package la

func Narrow32(v float64) float32 { return float32(v) }

func W64(v float32) float64 { return float64(v) }

func To32(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

func Wide64(dst []float64, src []float32) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}
`

// krylovFixtureSrc is a stand-in for internal/krylov's entry points,
// type-checked under import path "krylov".
const krylovFixtureSrc = `package krylov

func CG(b, x []float64, rtol float64, maxIter int) int {
	return maxIter
}
`

func laDep() fixtureDep { return fixtureDep{path: "la", src: laFixtureSrc} }

func TestNarrowingDiscipline(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{laDep()}, `package fixture

import "la"

var sink float32

func narrow(v float64, vs []float64, n int) {
	sink = float32(v) // line 8: bare narrowing of solver data: flagged
	sink = la.Narrow32(v)
	dst := make([]float32, len(vs))
	la.To32(dst, vs)
	sink = float32(1.5)
	sink = float32(n)
	sink = float32((v)) // line 14: parens do not hide the cut: flagged
	_ = dst
}
`)
	got := NarrowingDiscipline{LaPath: "la"}.Check(pkg)
	if !sameLines(got, 8, 14) {
		t.Errorf("narrowing-discipline lines = %v, want [8 14]", lines(got))
	}
}

func TestNarrowingDisciplineExemptsBoundaryPackage(t *testing.T) {
	pkg := checkFixture(t, `package fixture

func raw(v float64) float32 { return float32(v) }
`)
	if got := (NarrowingDiscipline{LaPath: "fixture"}).Check(pkg); len(got) != 0 {
		t.Errorf("boundary package must be exempt, got %v", got)
	}
	if got := (NarrowingDiscipline{LaPath: "la"}).Check(pkg); !sameLines(got, 3) {
		t.Errorf("non-boundary package lines = %v, want [3]", lines(got))
	}
}

func TestAccumulationWidth(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{laDep()}, `package fixture

import "la"

func addInto(acc *float32, x float64) {
	*acc += la.Narrow32(x)
}

func dots(a, b []float32, xs []float64) (float32, float64) {
	var s32 float32
	var s64 float64
	for i := range a {
		s32 += a[i] * b[i]
		s64 += la.W64(a[i]) * la.W64(b[i])
	}
	for _, x := range xs {
		s32 = s32 + la.Narrow32(x)
		addInto(&s32, x)
	}
	s32 += 1
	return s32, s64
}
`)
	// Line 13: f32-typed += reduction in a loop. Line 17: the spelled-out
	// s = s + e form. Line 18: the accumulating helper called in a loop —
	// the helper's own += (line 6) is not in a loop and is not flagged.
	// Line 14 (f64 accumulation over widened f32 operands) and line 20
	// (+= outside any loop) are the sanctioned patterns.
	got := AccumulationWidth{LaPath: "la"}.Check(pkg)
	if !sameLines(got, 13, 17, 18) {
		t.Errorf("accumulation-width lines = %v, want [13 17 18]", lines(got))
	}
}

func TestAccumulationWidthTransitiveSummary(t *testing.T) {
	pkg := checkFixtureWith(t, []fixtureDep{laDep()}, `package fixture

import "la"

func leaf(acc *float32, x float64) {
	*acc += la.Narrow32(x)
}

func wrap(acc *float32, x float64) {
	leaf(acc, x)
}

func drive(xs []float64) float32 {
	var s float32
	for _, x := range xs {
		wrap(&s, x)
	}
	return s
}
`)
	// wrap inherits leaf's accumulates-into-f32-param summary through the
	// fixpoint, so the looping call on line 16 is the finding.
	got := AccumulationWidth{LaPath: "la"}.Check(pkg)
	if !sameLines(got, 16) {
		t.Errorf("accumulation-width transitive lines = %v, want [16]", lines(got))
	}
}

func TestKrylovPrecisionInsidePackage(t *testing.T) {
	pkg := checkFixture(t, `package fixture

type workspace struct {
	v32 []float32
	r   []float64
}

func solve(b []float64, scratch []float32) float64 {
	return b[0]
}
`)
	// The named type holding an f32 field (line 3), the field itself
	// (line 4) and the f32 parameter (line 8) all violate the f64-only
	// contract when declared inside the protected package.
	got := KrylovPrecision{KrylovPath: "fixture", LaPath: "la"}.Check(pkg)
	if !sameLines(got, 3, 4, 8) {
		t.Errorf("krylov-precision inside lines = %v, want [3 4 8]", lines(got))
	}
}

func TestKrylovPrecisionTaintedCallers(t *testing.T) {
	deps := []fixtureDep{laDep(), {path: "krylov", src: krylovFixtureSrc}}
	pkg := checkFixtureWith(t, deps, `package fixture

import (
	"krylov"
	"la"
)

func widen(v float32) float64 { return float64(v) }

func run(a32 []float32, n int) {
	clean := make([]float64, n)
	x := make([]float64, n)
	krylov.CG(clean, x, 1e-8, n)
	b := make([]float64, n)
	b[0] = float64(a32[0])
	krylov.CG(b, x, 1e-8, n)
	c := make([]float64, n)
	la.Wide64(c, a32)
	krylov.CG(c, x, 1e-8, n)
	krylov.CG(x, x, widen(a32[0]), n)
}
`)
	// b is tainted by the bare float64(a32[0]) element write (line 15), so
	// the solve on line 16 is flagged; widen's returns-tainted summary
	// flags line 20. The pure-f64 solve (line 13) and the one fed through
	// the sanctioned la.Wide64 boundary (lines 18-19) are clean.
	got := KrylovPrecision{KrylovPath: "krylov", LaPath: "la"}.Check(pkg)
	if !sameLines(got, 16, 20) {
		t.Errorf("krylov-precision caller lines = %v, want [16 20]", lines(got))
	}
}

func TestKrylovPrecisionIgnoresNonImporters(t *testing.T) {
	pkg := checkFixture(t, `package fixture

func narrowLocal(v float64) float32 { return float32(v) }
`)
	if got := (KrylovPrecision{KrylovPath: "krylov", LaPath: "la"}).Check(pkg); len(got) != 0 {
		t.Errorf("package not importing krylov must be clean, got %v", got)
	}
}
