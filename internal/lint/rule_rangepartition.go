package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RangePartition proves that fan-out loops hand workers a disjoint,
// covering partition of [0, n). The recognized shape is the telescoping
// partition of pool.Dispatch:
//
//	lo := 0
//	for w := 0; w < nw; w++ {
//		hi := lo + width          // width provably >= 0
//		if w == nw-1 { hi = n }   // optional clamp, covers the remainder
//		handoff(lo, hi)           // send or go, unconditional, once
//		lo = hi                   // next chunk starts where this ended
//	}
//
// Each chunk starts where the previous ended and the first starts at 0,
// so chunks are pairwise disjoint by construction; the clamp makes the
// union exactly [0, n). Every deviation — a conditional handoff, a
// second write to the bounds, a width that can go negative, a seam that
// skips or re-covers an index — is a compile-time finding. The
// environment at the loop (guards proving n >= 1, clamped worker
// counts, div/mod quotients) comes from the same symbolic executor the
// shared-write rule uses.
//
// A loop is examined only when it hands off two locally-computed integer
// bounds (at least one assigned in the body) through a send or go
// statement — the signature of a range fan-out. Loops that merely spawn
// per-index workers (go f(i)) or send tokens are not partitions and are
// ignored.
type RangePartition struct {
	// Kernels is the package set to verify; nil means KernelPackages().
	Kernels []string
	// CheckPath names the debug-gate package; empty means
	// prometheus/internal/check.
	CheckPath string
}

// Name implements Rule.
func (RangePartition) Name() string { return "range-partition" }

// Check implements Rule.
func (r RangePartition) Check(pkg *Package) []Issue {
	kernels := r.Kernels
	if kernels == nil {
		kernels = KernelPackages()
	}
	checkPath := r.CheckPath
	if checkPath == "" {
		checkPath = "prometheus/internal/check"
	}
	if !pathInSet(pkg.Path, kernels) {
		return nil
	}
	var out []Issue
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !r.hasTriggeredLoop(pkg, fd) {
				continue
			}
			eng := newOwnEngine(pkg, checkPath)
			w := eng.newWalk(fd)
			w.onLoop = func(loop *ast.ForStmt, w *ownWalk) {
				out = append(out, r.checkLoop(pkg, loop, w)...)
			}
			w.exec(fd.Body)
		}
	}
	return out
}

// hasTriggeredLoop cheaply pre-filters functions containing a partition
// fan-out loop.
func (r RangePartition) hasTriggeredLoop(pkg *Package, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if loop, ok := n.(*ast.ForStmt); ok && r.triggered(pkg, loop) != nil {
			found = true
		}
		return !found
	})
	return found
}

// triggered returns the handoff statement payload when the loop is a
// range fan-out: a send or go whose payload references >= 2 local
// integer variables beyond the loop's own induction variables, at least
// one of which is assigned in the body.
func (r RangePartition) triggered(pkg *Package, loop *ast.ForStmt) ast.Node {
	induction := make(map[types.Object]bool)
	if init, ok := loop.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
		for _, lhs := range init.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pkg.Info.Defs[id]; obj != nil {
					induction[obj] = true
				}
			}
		}
	}
	assigned := make(map[types.Object]bool)
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := objOf(pkg, id); obj != nil {
						assigned[obj] = true
					}
				}
			}
		}
		return true
	})
	var handoff ast.Node
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if handoff != nil {
			return false
		}
		var payload ast.Node
		switch x := n.(type) {
		case *ast.SendStmt:
			payload = x.Value
		case *ast.GoStmt:
			payload = x.Call
		default:
			return true
		}
		locals := make(map[types.Object]bool)
		anyAssigned := false
		ast.Inspect(payload, func(c ast.Node) bool {
			if _, ok := c.(*ast.FuncLit); ok {
				return false
			}
			id, ok := c.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[id]
			if obj == nil || induction[obj] || !isIntType(obj.Type()) {
				return true
			}
			if _, isVar := obj.(*types.Var); !isVar || obj.Parent() == pkg.Types.Scope() {
				return true
			}
			locals[obj] = true
			if assigned[obj] {
				anyAssigned = true
			}
			return true
		})
		if len(locals) >= 2 && anyAssigned {
			handoff = n
		}
		return true
	})
	return handoff
}

func objOf(pkg *Package, id *ast.Ident) types.Object {
	if o := pkg.Info.Uses[id]; o != nil {
		return o
	}
	return pkg.Info.Defs[id]
}

// checkLoop verifies the telescoping-partition shape of one triggered
// loop, with w holding the symbolic environment at loop entry.
func (r RangePartition) checkLoop(pkg *Package, loop *ast.ForStmt, w *ownWalk) []Issue {
	handoff := r.triggered(pkg, loop)
	if handoff == nil {
		return nil
	}
	bad := func(n ast.Node, format string, args ...interface{}) []Issue {
		return []Issue{issue(pkg, n, r.Name(), Error, format, args...)}
	}

	// The handoff must be a top-level, unique statement of the body: a
	// conditional or repeated handoff breaks the one-chunk-per-iteration
	// accounting.
	count := 0
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.SendStmt, *ast.GoStmt:
			count++
		}
		return true
	})
	if count != 1 {
		return bad(handoff, "partition loop performs %d handoffs per iteration; the telescoping shape requires exactly one", count)
	}
	topLevel := -1
	for i, st := range loop.Body.List {
		if st == handoff {
			topLevel = i
		}
	}
	if topLevel < 0 {
		return bad(handoff, "partition handoff is conditional; a worker range skipped on some iteration leaves rows unwritten (or double-covers them)")
	}

	// Identify the (lo, hi) pair: hi := lo + width defined in the body,
	// lo = hi closing the telescope after the handoff.
	var loObj, hiObj types.Object
	var hiDefine *ast.AssignStmt
	var widthExpr ast.Expr
	hiIdx := -1
	for i, st := range loop.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			continue
		}
		add, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok || add.Op != token.ADD {
			continue
		}
		lhsID, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			continue
		}
		for _, cand := range [2][2]ast.Expr{{add.X, add.Y}, {add.Y, add.X}} {
			baseID, ok := ast.Unparen(cand[0]).(*ast.Ident)
			if !ok {
				continue
			}
			base := pkg.Info.Uses[baseID]
			if base == nil || !isIntType(base.Type()) {
				continue
			}
			loObj, hiObj = base, pkg.Info.Defs[lhsID]
			hiDefine, widthExpr, hiIdx = as, cand[1], i
			break
		}
		if hiDefine != nil {
			break
		}
	}
	if hiDefine == nil || loObj == nil || hiObj == nil {
		return bad(loop, "fan-out loop hands off computed bounds but does not match the telescoping partition shape (hi := lo + width ... lo = hi); the partition cannot be verified disjoint")
	}
	if hiIdx > topLevel {
		return bad(hiDefine, "partition end %s is computed after the handoff uses it", hiObj.Name())
	}

	// lo's only write in the body must be `lo = hi`, after the handoff.
	loAssigns := r.assignsTo(pkg, loop.Body, loObj)
	if len(loAssigns) != 1 {
		return bad(loop, "partition start %s must be advanced exactly once per iteration (found %d writes); extra writes break the end-to-start telescope", loObj.Name(), len(loAssigns))
	}
	closeIdx := -1
	for i, st := range loop.Body.List {
		if st == loAssigns[0] {
			closeIdx = i
		}
	}
	closeAs, _ := loAssigns[0].(*ast.AssignStmt)
	closeOK := false
	if closeAs != nil && len(closeAs.Rhs) == 1 {
		if id, ok := ast.Unparen(closeAs.Rhs[0]).(*ast.Ident); ok && pkg.Info.Uses[id] == hiObj {
			closeOK = true
		}
	}
	if !closeOK {
		return bad(loAssigns[0], "partition start %s must be advanced with `%s = %s` so the next chunk starts exactly where this one ended; any other update opens a seam (gap or overlap) between workers", loObj.Name(), loObj.Name(), hiObj.Name())
	}
	if closeIdx < topLevel {
		return bad(loAssigns[0], "partition start %s advances before the handoff; the handed-off range is not the one that was computed", loObj.Name())
	}

	// Semantic checks below run in a sandboxed copy of the walker state:
	// the body statements preceding the hi definition execute symbolically
	// so widths built from body-local clamps (u := q; if w < r { u++ })
	// are bound, without disturbing the enclosing walk.
	savedScope, savedFacts, savedHook := w.scope, w.cx.facts, w.onLoop
	w.scope = w.scope.clone()
	w.cx.facts = savedFacts.clone()
	w.onLoop = nil
	defer func() { w.scope, w.cx.facts, w.onLoop = savedScope, savedFacts, savedHook }()

	entryLo, entryLoOK := w.scope.vars[loObj]

	if ivar, loF, hiF := w.countingLoop(loop); ivar != nil {
		ls := w.e.tab.loopSym(loF, hiF, w.cx.provableNonneg(loF))
		w.scope.vars[ivar] = binding{f: aSym(ls)}
		w.cx.addLB(w.cx.sub(aSym(ls), loF), 0)
		if hiF != nil {
			w.cx.addLB(w.cx.sub(w.cx.sub(hiF, aConst(1)), aSym(ls)), 0)
		}
	}
	for _, st := range loop.Body.List[:hiIdx] {
		w.exec(st)
	}

	// hi may be reassigned once, by the sanctioned last-iteration clamp
	// `if w == last { hi = n }` between its definition and the handoff.
	hiAssigns := r.assignsTo(pkg, loop.Body, hiObj)
	clamped := false
	for _, st := range hiAssigns {
		idx := -1
		var clampIf *ast.IfStmt
		for i, top := range loop.Body.List {
			if top == st {
				idx = i
			}
			if ifs, ok := top.(*ast.IfStmt); ok {
				if len(ifs.Body.List) == 1 && ifs.Body.List[0] == st && ifs.Else == nil {
					idx = i
					clampIf = ifs
				}
			}
		}
		if clampIf == nil {
			return bad(st, "partition end %s is reassigned outside the last-iteration clamp; the chunk handed off no longer abuts its neighbors", hiObj.Name())
		}
		if idx > topLevel {
			return bad(st, "last-iteration clamp of %s comes after the handoff and has no effect on the range workers receive", hiObj.Name())
		}
		if !r.isLastIterClamp(pkg, clampIf, loop, w) {
			return bad(clampIf, "conditional reassignment of partition end %s is not the last-iteration clamp (if w == nw-1 { %s = n }); a mid-loop clamp overlaps or truncates neighboring chunks", hiObj.Name(), hiObj.Name())
		}
		clamped = true
	}

	// The chunk width must be provably nonnegative, or hi < lo hands a
	// worker an inverted range and the telescope walks backwards.
	width := w.evalInt(widthExpr)
	if !w.bindingNonneg(width) {
		return bad(hiDefine, "chunk width %s is not provably nonnegative at this point; a negative width makes ranges overlap their predecessors", exprString(pkg, widthExpr))
	}

	// The telescope must start at 0: lo's entry binding is the first
	// chunk's start.
	if !entryLoOK || entryLo.f == nil || !entryLo.f.isZero() || entryLo.slack != 0 {
		return bad(loop, "partition start %s is not provably 0 at loop entry; the first chunk would skip rows [0, %s)", loObj.Name(), loObj.Name())
	}

	if !clamped {
		return bad(loop, "partition loop never clamps its last chunk to the full extent (if w == nw-1 { %s = n }); when the range does not divide evenly the tail rows are never handed to any worker", hiObj.Name())
	}
	return nil
}

// assignsTo collects top-level-or-nested plain assignments to obj in the
// body (excluding its := definition).
func (r RangePartition) assignsTo(pkg *Package, body *ast.BlockStmt, obj types.Object) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
					out = append(out, x)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := x.X.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
				out = append(out, x)
			}
		}
		return true
	})
	return out
}

// isLastIterClamp matches `if w == last` where w is the loop's induction
// variable and last is provably the final iteration index (loop bound
// minus one).
func (r RangePartition) isLastIterClamp(pkg *Package, clamp *ast.IfStmt, loop *ast.ForStmt, w *ownWalk) bool {
	cond, ok := ast.Unparen(clamp.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	ivar, _, hiF := w.countingLoop(loop)
	if ivar == nil || hiF == nil {
		return false
	}
	last := w.cx.sub(hiF, aConst(1))
	for _, pair := range [2][2]ast.Expr{{cond.X, cond.Y}, {cond.Y, cond.X}} {
		id, ok := ast.Unparen(pair[0]).(*ast.Ident)
		if !ok || pkg.Info.Uses[id] != ivar {
			continue
		}
		b := w.evalInt(pair[1])
		if b.slack == 0 && b.f != nil && w.cx.equal(b.f, last) {
			return true
		}
	}
	return false
}
