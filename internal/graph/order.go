package graph

import "sort"

// NaturalOrder returns the identity ordering 0..n-1: the "natural" order of
// section 4.7 for meshes generated block-regularly (as ours are).
func NaturalOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}

// RandomOrder returns a deterministic pseudo-random permutation of 0..n-1
// derived from seed (splitmix64-driven Fisher-Yates). The paper's random
// ordering heuristic produces sparser MISs than natural orderings.
func RandomOrder(n int, seed uint64) []int {
	o := NaturalOrder(n)
	s := seed
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		o[i], o[j] = o[j], o[i]
	}
	return o
}

// CuthillMcKee returns the Cuthill-McKee ordering of the graph, the cache
// friendly "natural" ordering cited in section 4.7 ([24]). Each connected
// component is rooted at its minimum-degree vertex; within a BFS level,
// vertices are visited in order of increasing degree. The returned slice
// perm satisfies: perm[k] = original index of the k-th vertex in the new
// order.
func CuthillMcKee(g *Graph) []int {
	visited := make([]bool, g.N)
	perm := make([]int, 0, g.N)
	// Candidate roots sorted by degree.
	roots := NaturalOrder(g.N)
	sort.SliceStable(roots, func(a, b int) bool {
		return g.Degree(roots[a]) < g.Degree(roots[b])
	})
	var queue []int
	for _, root := range roots {
		if visited[root] {
			continue
		}
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			perm = append(perm, v)
			nbs := append([]int(nil), g.Neighbors(v)...)
			sort.SliceStable(nbs, func(a, b int) bool {
				return g.Degree(nbs[a]) < g.Degree(nbs[b])
			})
			for _, w := range nbs {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return perm
}

// ReverseCuthillMcKee returns the RCM ordering (CM reversed), the standard
// fill-reducing ordering used by the sparse Cholesky coarsest-grid solver.
func ReverseCuthillMcKee(g *Graph) []int {
	p := CuthillMcKee(g)
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}
