package graph

import (
	"sort"

	"prometheus/internal/geom"
)

// GreedyPartition splits the graph into nparts connected-ish parts of
// near-equal size by repeated BFS growth from the lowest-numbered
// unassigned vertex (a graph-growing heuristic standing in for METIS,
// which the paper uses both for the processor decomposition and for the
// block-Jacobi smoother blocks). It returns part[v] in [0, nparts).
func GreedyPartition(g *Graph, nparts int) []int {
	if nparts < 1 {
		panic("graph: nparts must be >= 1")
	}
	part := make([]int, g.N)
	for i := range part {
		part[i] = -1
	}
	// Strict per-part quotas: the first N%nparts parts get one extra
	// vertex. A part that exhausts its BFS frontier before reaching its
	// quota is topped up from a fresh seed (enclaves cannot blow up any
	// part's size, which matters because the block smoother factors each
	// part densely).
	quota := make([]int, nparts)
	for p := range quota {
		quota[p] = g.N / nparts
		if p < g.N%nparts {
			quota[p]++
		}
	}
	nextSeed := 0
	seed := func() int {
		for ; nextSeed < g.N; nextSeed++ {
			if part[nextSeed] < 0 {
				return nextSeed
			}
		}
		return -1
	}
	var queue []int
	for p := 0; p < nparts; p++ {
		size := 0
		queue = queue[:0]
		for size < quota[p] {
			if len(queue) == 0 {
				s := seed()
				if s < 0 {
					break
				}
				part[s] = p
				size++
				queue = append(queue, s)
				continue
			}
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if part[w] < 0 && size < quota[p] {
					part[w] = p
					size++
					queue = append(queue, w)
				}
			}
		}
	}
	return part
}

// RCB performs recursive coordinate bisection of the points into nparts
// parts (nparts need not be a power of two; splits are weighted). It is the
// geometric stand-in for the paper's SMP-then-processor two-level
// decomposition. Returns part[v] in [0, nparts).
func RCB(pts []geom.Vec3, nparts int) []int {
	part := make([]int, len(pts))
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	rcbRecurse(pts, idx, 0, nparts, part)
	return part
}

func rcbRecurse(pts []geom.Vec3, idx []int, base, nparts int, part []int) {
	if nparts <= 1 || len(idx) == 0 {
		for _, v := range idx {
			part[v] = base
		}
		return
	}
	// Choose the longest axis of the bounding box of this subset.
	box := geom.AABB{Min: pts[idx[0]], Max: pts[idx[0]]}
	for _, v := range idx[1:] {
		box.Include(pts[v])
	}
	d := box.Max.Sub(box.Min)
	axis := 0
	if d.Y > d.X && d.Y >= d.Z {
		axis = 1
	} else if d.Z > d.X && d.Z > d.Y {
		axis = 2
	}
	coord := func(v int) float64 {
		switch axis {
		case 0:
			return pts[v].X
		case 1:
			return pts[v].Y
		default:
			return pts[v].Z
		}
	}
	sort.SliceStable(idx, func(a, b int) bool { return coord(idx[a]) < coord(idx[b]) })
	left := nparts / 2
	right := nparts - left
	cut := len(idx) * left / nparts
	rcbRecurse(pts, idx[:cut], base, left, part)
	rcbRecurse(pts, idx[cut:], base+left, right, part)
}

// PartSizes returns the size of each part in a partition vector.
func PartSizes(part []int, nparts int) []int {
	sizes := make([]int, nparts)
	for _, p := range part {
		sizes[p]++
	}
	return sizes
}

// CutEdges returns the number of undirected edges crossing between parts.
func CutEdges(g *Graph, part []int) int {
	cut := 0
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if v < w && part[v] != part[w] {
				cut++
			}
		}
	}
	return cut
}

// PartMembers returns, for each part, the list of vertices in it.
func PartMembers(part []int, nparts int) [][]int {
	members := make([][]int, nparts)
	for v, p := range part {
		members[p] = append(members[p], v)
	}
	return members
}

// TwoLevelRCB reproduces the paper's CLUMP decomposition (section 5): the
// problem is first partitioned onto the SMP nodes, then each node's
// subproblem is partitioned across its processors. The returned ids are
// global processor ranks in [0, nodes*procsPerNode); ranks r with equal
// r/procsPerNode share an SMP node, so halo traffic within a node benefits
// from the faster intra-node fabric.
func TwoLevelRCB(pts []geom.Vec3, nodes, procsPerNode int) []int {
	if nodes < 1 || procsPerNode < 1 {
		panic("graph: TwoLevelRCB needs positive node and processor counts")
	}
	nodeOf := RCB(pts, nodes)
	out := make([]int, len(pts))
	members := PartMembers(nodeOf, nodes)
	for node, verts := range members {
		local := make([]geom.Vec3, len(verts))
		for i, v := range verts {
			local[i] = pts[v]
		}
		sub := RCB(local, procsPerNode)
		for i, v := range verts {
			out[v] = node*procsPerNode + sub[i]
		}
	}
	return out
}
