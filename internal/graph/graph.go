// Package graph provides the vertex-graph machinery of the coarsening
// algorithm: adjacency graphs in CSR form, the greedy maximal independent
// set algorithm of section 4.1 with the rank and ordering heuristics of
// sections 4.2 and 4.7, Cuthill-McKee ("natural") and deterministic random
// vertex orderings, connected components, and graph partitioners standing
// in for METIS (greedy graph-growing) and for the geometric decomposition
// (recursive coordinate bisection).
package graph

import (
	"sort"

	"prometheus/internal/sortutil"
)

// Graph is an undirected graph in CSR adjacency form. Self-loops are not
// stored; the adjacency of each vertex is sorted.
type Graph struct {
	N   int
	Ptr []int // len N+1
	Adj []int // len 2*edges
}

// NewGraph builds a graph from an edge list. Duplicate and self edges are
// discarded.
func NewGraph(n int, edges [][2]int) *Graph {
	adj := make([]map[int]struct{}, n)
	add := func(a, b int) {
		if adj[a] == nil {
			adj[a] = make(map[int]struct{}, 8)
		}
		adj[a][b] = struct{}{}
	}
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		add(e[0], e[1])
		add(e[1], e[0])
	}
	return fromSets(n, adj)
}

func fromSets(n int, adj []map[int]struct{}) *Graph {
	ptr := make([]int, n+1)
	total := 0
	for i, s := range adj {
		ptr[i] = total
		total += len(s)
	}
	ptr[n] = total
	flat := make([]int, total)
	var buf []int
	for i, s := range adj {
		buf = sortutil.KeysInto(buf, s)
		copy(flat[ptr[i]:ptr[i+1]], buf)
	}
	return &Graph{N: n, Ptr: ptr, Adj: flat}
}

// Neighbors returns the adjacency list of v (shared storage; do not modify).
func (g *Graph) Neighbors(v int) []int { return g.Adj[g.Ptr[v]:g.Ptr[v+1]] }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int { return g.Ptr[v+1] - g.Ptr[v] }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// HasEdge reports whether (a, b) is an edge.
func (g *Graph) HasEdge(a, b int) bool {
	nb := g.Neighbors(a)
	k := sort.SearchInts(nb, b)
	return k < len(nb) && nb[k] == b
}

// SubgraphWithout returns a copy of g with the given undirected edges
// removed. The edge set is given as pairs; pairs not present are ignored.
func (g *Graph) SubgraphWithout(remove [][2]int) *Graph {
	del := make(map[[2]int]struct{}, len(remove))
	for _, e := range remove {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		del[[2]int{a, b}] = struct{}{}
	}
	adj := make([]map[int]struct{}, g.N)
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			a, b := v, w
			if a > b {
				a, b = b, a
			}
			if _, dead := del[[2]int{a, b}]; dead {
				continue
			}
			if adj[v] == nil {
				adj[v] = make(map[int]struct{}, g.Degree(v))
			}
			adj[v][w] = struct{}{}
		}
	}
	return fromSets(g.N, adj)
}

// FilterEdges returns a copy of g keeping only edges for which keep returns
// true. keep is called once per undirected edge with a < b.
func (g *Graph) FilterEdges(keep func(a, b int) bool) *Graph {
	adj := make([]map[int]struct{}, g.N)
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if v >= w {
				continue
			}
			if !keep(v, w) {
				continue
			}
			if adj[v] == nil {
				adj[v] = make(map[int]struct{}, 8)
			}
			if adj[w] == nil {
				adj[w] = make(map[int]struct{}, 8)
			}
			adj[v][w] = struct{}{}
			adj[w][v] = struct{}{}
		}
	}
	return fromSets(g.N, adj)
}

// Components returns the connected component id of every vertex and the
// number of components.
func (g *Graph) Components() ([]int, int) {
	comp := make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	nc := 0
	queue := make([]int, 0, g.N)
	for s := 0; s < g.N; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = nc
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if comp[w] < 0 {
					comp[w] = nc
					queue = append(queue, w)
				}
			}
		}
		nc++
	}
	return comp, nc
}
