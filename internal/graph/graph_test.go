package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prometheus/internal/geom"
)

// pathGraph returns 0-1-2-...-n-1.
func pathGraph(n int) *Graph {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return NewGraph(n, edges)
}

// gridGraph returns an nx × ny 4-connected grid; vertex (i,j) = i*ny+j.
func gridGraph(nx, ny int) *Graph {
	var edges [][2]int
	id := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			if i+1 < nx {
				edges = append(edges, [2]int{id(i, j), id(i+1, j)})
			}
			if j+1 < ny {
				edges = append(edges, [2]int{id(i, j), id(i, j+1)})
			}
		}
	}
	return NewGraph(nx*ny, edges)
}

func randGraph(rng *rand.Rand, n, m int) *Graph {
	edges := make([][2]int, m)
	for k := range edges {
		edges[k] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	return NewGraph(n, edges)
}

func TestNewGraphDedup(t *testing.T) {
	g := NewGraph(3, [][2]int{{0, 1}, {1, 0}, {0, 1}, {2, 2}})
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("missing edge 0-1")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self loop stored")
	}
	if g.Degree(2) != 0 {
		t.Fatal("vertex 2 should be isolated")
	}
}

func TestMISPathNatural(t *testing.T) {
	// Natural order on a path selects every other vertex: maximum density.
	g := pathGraph(7)
	mis := MIS(g, NaturalOrder(7), nil, nil)
	if !IsMaximal(g, mis) {
		t.Fatal("not maximal")
	}
	if len(mis) != 4 {
		t.Fatalf("|MIS| = %d, want 4 (vertices 0,2,4,6)", len(mis))
	}
}

func TestMISInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		n := 2 + int(uint(seed)%60)
		g := randGraph(rng, n, 3*n)
		order := RandomOrder(n, uint64(seed))
		mis := MIS(g, order, nil, nil)
		return IsMaximal(g, mis)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMISWithRanks(t *testing.T) {
	// Star: center 0 adjacent to 1..5. Give vertex 3 the highest rank: it
	// must be in the MIS, and the center must not suppress it.
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}
	g := NewGraph(6, edges)
	rank := []int{0, 0, 0, 3, 0, 0}
	order := RankedOrder(rank, NaturalOrder(6))
	mis := MIS(g, order, rank, nil)
	if !IsMaximal(g, mis) {
		t.Fatal("not maximal")
	}
	found := false
	for _, v := range mis {
		if v == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("high-rank vertex 3 not selected: %v", mis)
	}
}

func TestMISImmortal(t *testing.T) {
	// Triangle with all vertices immortal: all must be selected even though
	// that breaks independence between immortals is impossible — immortals
	// are selected but cannot be deleted; on a triangle the first immortal
	// selected deletes nothing (others immortal) so all three are selected.
	// The paper's corners behave this way: "we do not allow corners to be
	// deleted at all", accepting dense corner sets on the coarse grid.
	g := NewGraph(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	imm := []bool{true, true, true}
	mis := MIS(g, NaturalOrder(3), nil, imm)
	if len(mis) != 3 {
		t.Fatalf("immortal vertices must all be kept, got %v", mis)
	}
	// With only vertex 1 immortal, vertex 1 is selected first and deletes
	// the others.
	mis = MIS(g, NaturalOrder(3), nil, []bool{false, true, false})
	if len(mis) != 1 || mis[0] != 1 {
		t.Fatalf("mis = %v, want [1]", mis)
	}
}

func TestMISOrderingDensity(t *testing.T) {
	// Section 4.7: natural orderings give denser MISs than random ones.
	// On a large 2D grid natural order picks ~1/4 (every other in each
	// dimension); random order is sparser on average but at least 1/5th.
	g := gridGraph(40, 40)
	nat := MIS(g, NaturalOrder(g.N), nil, nil)
	rnd := MIS(g, RandomOrder(g.N, 12345), nil, nil)
	if !IsMaximal(g, nat) || !IsMaximal(g, rnd) {
		t.Fatal("not maximal")
	}
	if len(nat) <= len(rnd) {
		t.Fatalf("natural (%d) should be denser than random (%d)", len(nat), len(rnd))
	}
	// On a 4-connected grid any maximal independent set has between N/5
	// (independent dominating set) and N/2 (checkerboard) vertices; the
	// natural row-major order achieves exactly the checkerboard.
	if len(nat) != g.N/2 {
		t.Fatalf("natural MIS size %d, want checkerboard %d", len(nat), g.N/2)
	}
	if len(rnd) < g.N/5 || len(rnd) > g.N/2 {
		t.Fatalf("random MIS size %d outside [%d,%d]", len(rnd), g.N/5, g.N/2)
	}
}

func TestSubgraphWithout(t *testing.T) {
	g := NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	h := g.SubgraphWithout([][2]int{{2, 1}, {3, 0}})
	if h.NumEdges() != 2 {
		t.Fatalf("edges = %d", h.NumEdges())
	}
	if h.HasEdge(1, 2) || h.HasEdge(0, 3) {
		t.Fatal("removed edge still present")
	}
	if !h.HasEdge(0, 1) || !h.HasEdge(2, 3) {
		t.Fatal("kept edge missing")
	}
}

func TestFilterEdges(t *testing.T) {
	g := gridGraph(5, 5)
	// Keep only edges whose endpoints share the same parity of vertex id.
	h := g.FilterEdges(func(a, b int) bool { return a%2 == b%2 })
	for v := 0; v < h.N; v++ {
		for _, w := range h.Neighbors(v) {
			if v%2 != w%2 {
				t.Fatal("filter violated")
			}
		}
	}
}

func TestComponents(t *testing.T) {
	g := NewGraph(6, [][2]int{{0, 1}, {1, 2}, {4, 5}})
	comp, nc := g.Components()
	if nc != 3 {
		t.Fatalf("nc = %d", nc)
	}
	if comp[0] != comp[2] || comp[4] != comp[5] || comp[0] == comp[3] || comp[3] == comp[4] {
		t.Fatalf("comp = %v", comp)
	}
}

func TestCuthillMcKeeIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randGraph(rng, 50, 120)
	for _, p := range [][]int{CuthillMcKee(g), ReverseCuthillMcKee(g), RandomOrder(50, 9)} {
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
		if len(p) != 50 {
			t.Fatal("wrong length")
		}
	}
}

func TestCuthillMcKeeReducesBandwidth(t *testing.T) {
	// On a grid numbered randomly, RCM should reduce the bandwidth.
	g := gridGraph(12, 12)
	shuffle := RandomOrder(g.N, 77)
	inv := make([]int, g.N)
	for newID, old := range shuffle {
		inv[old] = newID
	}
	var edges [][2]int
	for v := 0; v < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			if v < w {
				edges = append(edges, [2]int{inv[v], inv[w]})
			}
		}
	}
	shuffled := NewGraph(g.N, edges)
	bandwidth := func(gr *Graph, perm []int) int {
		pos := make([]int, gr.N)
		for k, v := range perm {
			pos[v] = k
		}
		bw := 0
		for v := 0; v < gr.N; v++ {
			for _, w := range gr.Neighbors(v) {
				if d := pos[v] - pos[w]; d > bw {
					bw = d
				} else if -d > bw {
					bw = -d
				}
			}
		}
		return bw
	}
	before := bandwidth(shuffled, NaturalOrder(g.N))
	after := bandwidth(shuffled, ReverseCuthillMcKee(shuffled))
	if after >= before {
		t.Fatalf("RCM did not reduce bandwidth: %d -> %d", before, after)
	}
}

func TestGreedyPartitionBalanced(t *testing.T) {
	g := gridGraph(20, 20)
	for _, np := range []int{1, 2, 3, 7, 8} {
		part := GreedyPartition(g, np)
		sizes := PartSizes(part, np)
		total := 0
		for _, s := range sizes {
			total += s
		}
		if total != g.N {
			t.Fatalf("np=%d: sizes %v don't cover graph", np, sizes)
		}
		target := (g.N + np - 1) / np
		for p, s := range sizes {
			if s > 2*target {
				t.Fatalf("np=%d: part %d badly oversized: %v", np, p, sizes)
			}
		}
	}
}

func TestRCBBalancedAndCut(t *testing.T) {
	// Points on a 10x10x4 lattice.
	var pts []geom.Vec3
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			for k := 0; k < 4; k++ {
				pts = append(pts, geom.Vec3{X: float64(i), Y: float64(j), Z: float64(k)})
			}
		}
	}
	for _, np := range []int{2, 3, 4, 6} {
		part := RCB(pts, np)
		sizes := PartSizes(part, np)
		for _, s := range sizes {
			if s < len(pts)/np-np || s > len(pts)/np+np {
				t.Fatalf("np=%d unbalanced: %v", np, sizes)
			}
		}
	}
	// RCB on the lattice graph should have a reasonable edge cut: compare
	// with a random partition.
	g := gridGraph(20, 20)
	var pts2 []geom.Vec3
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			pts2 = append(pts2, geom.Vec3{X: float64(i), Y: float64(j)})
		}
	}
	rcbPart := RCB(pts2, 4)
	randPart := make([]int, g.N)
	rng := rand.New(rand.NewSource(3))
	for i := range randPart {
		randPart[i] = rng.Intn(4)
	}
	if CutEdges(g, rcbPart) >= CutEdges(g, randPart) {
		t.Fatal("RCB cut should beat random cut")
	}
}

func TestPartMembers(t *testing.T) {
	part := []int{0, 1, 0, 2, 1}
	m := PartMembers(part, 3)
	if len(m[0]) != 2 || m[0][0] != 0 || m[0][1] != 2 {
		t.Fatalf("members = %v", m)
	}
	if len(m[2]) != 1 || m[2][0] != 3 {
		t.Fatalf("members = %v", m)
	}
}

func TestRankedOrder(t *testing.T) {
	rank := []int{0, 2, 1, 2, 0}
	order := RankedOrder(rank, NaturalOrder(5))
	// Expect ranks descending: 1,3 (rank 2), 2 (rank 1), 0,4 (rank 0).
	want := []int{1, 3, 2, 0, 4}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestGreedyPartitionQuickProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64) bool {
		n := 2 + int(uint(seed)%80)
		g := randGraph(rng, n, 2*n)
		np := 1 + int(uint(seed/7)%6)
		part := GreedyPartition(g, np)
		sizes := PartSizes(part, np)
		total := 0
		for p, s := range sizes {
			total += s
			// Strict quota: no part exceeds ceil(n/np).
			if s > (n+np-1)/np {
				t.Logf("part %d oversized: %v (n=%d np=%d)", p, sizes, n, np)
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRCBQuickBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		n := 8 + int(uint(seed)%200)
		pts := make([]geom.Vec3, n)
		for i := range pts {
			pts[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		}
		np := 2 + int(uint(seed/5)%6)
		part := RCB(pts, np)
		sizes := PartSizes(part, np)
		for _, s := range sizes {
			if s < n/np-1 || s > n/np+np {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMISQuickOnModifiedStyleGraphs(t *testing.T) {
	// MIS invariants hold after arbitrary edge filtering (the modified
	// graphs of section 4.6 are exactly such subgraphs).
	rng := rand.New(rand.NewSource(43))
	f := func(seed int64) bool {
		n := 2 + int(uint(seed)%50)
		g := randGraph(rng, n, 3*n)
		h := g.FilterEdges(func(a, b int) bool { return (a+b)%3 != 0 })
		rank := make([]int, n)
		imm := make([]bool, n)
		for v := range rank {
			rank[v] = v % 4
			imm[v] = v%17 == 0
		}
		order := RankedOrder(rank, RandomOrder(n, uint64(seed)))
		mis := MIS(h, order, rank, imm)
		// All immortals present.
		in := make(map[int]bool, len(mis))
		for _, v := range mis {
			in[v] = true
		}
		for v := range imm {
			if imm[v] && !in[v] {
				return false
			}
		}
		// Independence among mortals, maximality overall: immortal pairs
		// may be adjacent, so check the mortal subset and coverage.
		for _, v := range mis {
			for _, w := range h.Neighbors(v) {
				if in[w] && !(imm[v] && imm[w]) {
					return false
				}
			}
		}
		for v := 0; v < n; v++ {
			if in[v] {
				continue
			}
			covered := false
			for _, w := range h.Neighbors(v) {
				if in[w] {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestTwoLevelRCB(t *testing.T) {
	var pts []geom.Vec3
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			pts = append(pts, geom.Vec3{X: float64(i), Y: float64(j)})
		}
	}
	const nodes, ppn = 3, 4
	part := TwoLevelRCB(pts, nodes, ppn)
	sizes := PartSizes(part, nodes*ppn)
	for p, s := range sizes {
		if s < len(pts)/(nodes*ppn)-3 || s > len(pts)/(nodes*ppn)+3 {
			t.Fatalf("rank %d unbalanced: %v", p, sizes)
		}
	}
	// The first-level split must agree with plain RCB on the node count:
	// ranks of the same node form contiguous geometric regions, so the
	// node-level partition (rank/ppn) must match RCB(pts, nodes) sizes.
	nodeSizes := make([]int, nodes)
	for _, r := range part {
		nodeSizes[r/ppn]++
	}
	want := PartSizes(RCB(pts, nodes), nodes)
	for n := range nodeSizes {
		if nodeSizes[n] != want[n] {
			t.Fatalf("node sizes %v, want %v", nodeSizes, want)
		}
	}
}
