package graph

import "sort"

// Vertex states of the greedy MIS algorithm (Figure 2 of the paper).
const (
	Undone = iota
	Selected
	Deleted
)

// MIS computes a maximal independent set with the greedy algorithm of
// Figure 2. order gives the traversal order of the vertices (a permutation
// of 0..N-1); rank gives each vertex's rank (section 4.2): a vertex may not
// be deleted by a neighbour of strictly lower rank — instead the lower-rank
// vertex is skipped, implementing "a vertex of lower rank does not suppress
// a vertex of higher rank" (section 4.6). immortal vertices (the paper's
// corners, "we do not allow corners to be deleted at all") are always
// selected when visited and can never be deleted. order is required; rank
// and immortal may be nil.
//
// The returned slice contains the selected vertices in traversal order.
func MIS(g *Graph, order []int, rank []int, immortal []bool) []int {
	if len(order) != g.N {
		panic("graph: MIS order must be a permutation of the vertices")
	}
	state := make([]int8, g.N)
	var mis []int
	rk := func(v int) int {
		if rank == nil {
			return 0
		}
		return rank[v]
	}
	imm := func(v int) bool { return immortal != nil && immortal[v] }

	// First pass: immortal vertices are selected up front (they can never
	// be deleted), deleting their deletable neighbours.
	for _, v := range order {
		if !imm(v) || state[v] != Undone {
			continue
		}
		state[v] = Selected
		mis = append(mis, v)
		for _, w := range g.Neighbors(v) {
			if state[w] == Undone && !imm(w) {
				state[w] = Deleted
			}
		}
	}

	// Greedy pass in traversal order with the rank guard.
	for _, v := range order {
		if state[v] != Undone {
			continue
		}
		// v may be selected only if no undone neighbour outranks it.
		blocked := false
		for _, w := range g.Neighbors(v) {
			if state[w] == Undone && rk(w) > rk(v) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		state[v] = Selected
		mis = append(mis, v)
		for _, w := range g.Neighbors(v) {
			if state[w] == Undone && !imm(w) {
				state[w] = Deleted
			}
		}
	}

	// Cleanup pass: rank-blocking can strand vertices whose higher-rank
	// neighbours were later deleted by someone else; sweep until maximal.
	for changed := true; changed; {
		changed = false
		for _, v := range order {
			if state[v] != Undone {
				continue
			}
			free := true
			for _, w := range g.Neighbors(v) {
				if state[w] == Selected {
					free = false
					break
				}
			}
			if free {
				state[v] = Selected
				mis = append(mis, v)
				for _, w := range g.Neighbors(v) {
					if state[w] == Undone && !imm(w) {
						state[w] = Deleted
					}
				}
				changed = true
			} else {
				state[v] = Deleted
				changed = true
			}
		}
	}
	return mis
}

// IsIndependent reports whether no two vertices of set are adjacent in g.
func IsIndependent(g *Graph, set []int) bool {
	in := make([]bool, g.N)
	for _, v := range set {
		in[v] = true
	}
	for _, v := range set {
		for _, w := range g.Neighbors(v) {
			if in[w] {
				return false
			}
		}
	}
	return true
}

// IsMaximal reports whether set is independent and no vertex outside set
// could be added while preserving independence.
func IsMaximal(g *Graph, set []int) bool {
	if !IsIndependent(g, set) {
		return false
	}
	in := make([]bool, g.N)
	for _, v := range set {
		in[v] = true
	}
	for v := 0; v < g.N; v++ {
		if in[v] {
			continue
		}
		covered := false
		for _, w := range g.Neighbors(v) {
			if in[w] {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// RankedOrder returns a traversal order that visits vertices by descending
// rank (the paper's topological categories: corners before edges before
// surfaces before interiors) and by the given within-rank order. within is
// a permutation of 0..n-1 giving the tie-break order.
func RankedOrder(rank []int, within []int) []int {
	n := len(rank)
	order := append([]int(nil), within...)
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rank[order[a]] > rank[order[b]]
	})
	return order
}
