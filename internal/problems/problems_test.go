package problems

import (
	"math"
	"testing"

	"prometheus/internal/geom"
	"prometheus/internal/material"
)

func TestSphereMatLayers(t *testing.T) {
	// Core and outside are soft.
	if SphereMat(geom.Vec3{X: 1}) != material.MatSoft {
		t.Fatal("core should be soft")
	}
	if SphereMat(geom.Vec3{X: 10}) != material.MatSoft {
		t.Fatal("outside should be soft")
	}
	// First layer (just above r=2.5) is hard; alternation holds.
	layerWidth := (SphereROut - SphereRIn) / NumLayers
	for l := 0; l < NumLayers; l++ {
		r := SphereRIn + (float64(l)+0.5)*layerWidth
		got := SphereMat(geom.Vec3{Z: r})
		want := material.MatSoft
		if l%2 == 0 {
			want = material.MatHard
		}
		if got != want {
			t.Fatalf("layer %d (r=%v): mat %d want %d", l, r, got, want)
		}
	}
}

// smallCfg is a reduced geometry for unit tests: 3 layers, 7³ elements.
var smallCfg = SpheresConfig{Layers: 3, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2}

func TestNewSpheres(t *testing.T) {
	s := NewSpheresConfig(smallCfg)
	if err := s.Mesh.Validate(); err != nil {
		t.Fatal(err)
	}
	n := smallCfg.NumRadial()
	if s.Mesh.NumElems() != n*n*n {
		t.Fatalf("elems = %d", s.Mesh.NumElems())
	}
	hf := s.HardFraction()
	if hf <= 0.02 || hf >= 0.6 {
		t.Fatalf("hard fraction = %v, implausible", hf)
	}
	// Constraints: top surface crush plus three symmetry planes.
	nTop := 0
	for v, p := range s.Mesh.Coords {
		if p.Z > OctantSide-1e-9 {
			if s.Cons.Fixed[3*v+2] != TotalCrushUz {
				t.Fatal("top surface not crushed")
			}
			nTop++
		}
		if p.X < 1e-9 {
			if _, ok := s.Cons.Fixed[3*v]; !ok {
				t.Fatal("x symmetry missing")
			}
		}
	}
	if nTop != (n+1)*(n+1) {
		t.Fatalf("top verts = %d, want %d", nTop, (n+1)*(n+1))
	}
	if s.Models[s.HardMat].Name() != "j2-plasticity" {
		t.Fatal("hard material must be plastic")
	}
}

func TestSpheresMeshPositiveJacobians(t *testing.T) {
	// The warped mesh must have strictly positive element volumes.
	s := NewSpheresConfig(smallCfg)
	min, _ := s.Mesh.Quality()
	if min <= 0 {
		t.Fatalf("warped mesh has non-positive quality proxy: %v", min)
	}
}

func TestSpheresShellsConnected(t *testing.T) {
	// Every hard layer must form a connected shell: the hard elements at
	// two opposite ends of the first shell must be joined through hard
	// elements. Cheap proxy: the count of hard elements in each layer band
	// matches a full shell of the structured grid (3 faces of a cube
	// shell, ElemsPerLayer thick: nonzero and large).
	s := NewSpheresConfig(smallCfg)
	layerWidth := (SphereROut - SphereRIn) / float64(smallCfg.Layers)
	counts := make([]int, smallCfg.Layers)
	for e, conn := range s.Mesh.Elems {
		c := geom.Vec3{}
		for _, v := range conn {
			c = c.Add(s.Mesh.Coords[v])
		}
		c = c.Scale(1.0 / 8)
		r := math.Sqrt(c.X*c.X + c.Y*c.Y + c.Z*c.Z)
		if r >= SphereRIn && r <= SphereROut {
			l := int((r - SphereRIn) / layerWidth)
			if l >= smallCfg.Layers {
				l = smallCfg.Layers - 1
			}
			if s.Mesh.Mat[e] == material.MatHard {
				counts[l]++
			}
		}
	}
	// Layers 0 and 2 are hard; layer 1 soft.
	if counts[0] == 0 || counts[2] == 0 {
		t.Fatalf("hard layers empty: %v", counts)
	}
	if counts[1] != 0 {
		t.Fatalf("soft layer contains hard elements: %v", counts)
	}
	// A complete cube shell at radial index i has 3i²+3i+1 elements; hard
	// shells must be at least a full shell's worth.
	if counts[0] < 19 {
		t.Fatalf("first hard shell looks disconnected: %d elements", counts[0])
	}
}

func TestSpheresDofScaling(t *testing.T) {
	// Dofs grow like (n+1)³ with the radial resolution.
	d1 := NewSpheresConfig(SpheresConfig{Layers: 3, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2}).Mesh.NumDOF()
	d2 := NewSpheresConfig(SpheresConfig{Layers: 3, ElemsPerLayer: 2, CoreElems: 4, OuterElems: 4}).Mesh.NumDOF()
	ratio := float64(d2) / float64(d1)
	if math.Abs(ratio-8) > 3 {
		t.Fatalf("dof ratio = %v", ratio)
	}
}

func TestPaperBaseProblemSize(t *testing.T) {
	// The paper's base problem is ~80k dof; our k=1 17-layer octant must
	// land in the same decade.
	cfg := SpheresConfig{Layers: 17, ElemsPerLayer: 1, CoreElems: 3, OuterElems: 3}
	n := cfg.NumRadial()
	dof := 3 * (n + 1) * (n + 1) * (n + 1)
	if dof < 20000 || dof > 200000 {
		t.Fatalf("base problem dof = %d", dof)
	}
}

func TestNewCube(t *testing.T) {
	c := NewCube(3, material.LinearElastic{E: 1, Nu: 0.3}, -0.01)
	if err := c.Mesh.Validate(); err != nil {
		t.Fatal(err)
	}
	loaded := 0
	for _, f := range c.Load {
		if f != 0 {
			loaded++
		}
	}
	if loaded != 16 {
		t.Fatalf("loaded dofs = %d, want 16 (4x4 top verts)", loaded)
	}
	if len(c.Cons.Fixed) != 3*16 {
		t.Fatalf("fixed dofs = %d", len(c.Cons.Fixed))
	}
}

func TestThinSlab(t *testing.T) {
	m := ThinSlab(6, 5, 0.3)
	if m.NumElems() != 30 {
		t.Fatalf("elems = %d", m.NumElems())
	}
	box := geom.NewAABB(m.Coords)
	if box.Max.Z != 0.3 {
		t.Fatalf("thickness = %v", box.Max.Z)
	}
}

func TestNewCantilever(t *testing.T) {
	c := NewCantilever(6, 1, 1, 6, material.LinearElastic{E: 1, Nu: 0.3}, -0.001)
	if err := c.Mesh.Validate(); err != nil {
		t.Fatal(err)
	}
	// Clamped end: 4 verts × 3 dofs.
	if len(c.Cons.Fixed) != 12 {
		t.Fatalf("fixed dofs = %d", len(c.Cons.Fixed))
	}
}

func TestPaperSizes(t *testing.T) {
	dofs, procs := PaperSizes()
	if len(dofs) != len(procs) || len(dofs) != 8 {
		t.Fatal("Table 2 has 8 columns")
	}
	// ~40k dof per processor throughout.
	for i := range dofs {
		perProc := float64(dofs[i]) / float64(procs[i])
		if perProc < 25000 || perProc > 65000 {
			t.Fatalf("dof/proc = %v at column %d", perProc, i)
		}
	}
}
