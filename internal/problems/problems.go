// Package problems generates the test problems of the paper: above all the
// section 7 model problem — "a sphere embedded in a cube; the sphere is
// constructed of seventeen alternating 'hard' and 'soft' layers and the
// cube is a 'soft' material. Think of a spherical steel-belted radial
// inside a rubber cube." — modelled on one octant with symmetry boundary
// conditions and a crushing displacement on the top surface, plus the
// auxiliary geometries used by the other experiments (plain cube,
// thin slab, cantilever).
package problems

import (
	"math"

	"prometheus/internal/fem"
	"prometheus/internal/geom"
	"prometheus/internal/material"
	"prometheus/internal/mesh"
)

// Octant geometry constants (inches, matching section 7.2: the octant is
// 12.5 on a side; the top soft section is 5 thick at the central axis, so
// the sphere radius is 7.5; the layered shell spans [2.5, 7.5] with 17
// alternating layers; total crush 3.6 downward).
const (
	OctantSide   = 12.5
	SphereROut   = 7.5
	SphereRIn    = 2.5
	NumLayers    = 17
	TotalCrushUz = -3.6
)

// Spheres is the parameterized model problem.
type Spheres struct {
	Mesh *mesh.Mesh
	// Cons carries the full-crush constraint values; scale per load step.
	Cons *fem.Constraints
	// Models is the Table 1 material database (index material.MatSoft/Hard).
	Models []material.Model
	// HardMat is the material id whose plastic fraction Figure 13 tracks.
	HardMat int
	// Config records the discretization.
	Config SpheresConfig
}

// SpheresConfig parameterizes the octant discretization. The mesh is a
// radially warped ("cubed sphere") structured grid: the cube shells of the
// uniform grid are mapped onto nested surfaces that are exact spheres
// through the layered band and blend back to the cube at the core centre
// and at the outer boundary. Every shell layer therefore gets
// ElemsPerLayer connected elements through its thickness, exactly like the
// paper's meshes ("each successive problem has one more layer of elements
// through each of the seventeen shell layers").
type SpheresConfig struct {
	Layers        int // alternating hard/soft layers (paper: 17)
	ElemsPerLayer int // radial elements per layer (paper: 1, 2, 3, ...)
	CoreElems     int // radial elements in the soft core
	OuterElems    int // radial elements between sphere and cube surface
}

// NumRadial returns the radial (= per-direction) element count.
func (c SpheresConfig) NumRadial() int {
	return c.CoreElems + c.Layers*c.ElemsPerLayer + c.OuterElems
}

// NewSpheres builds the paper's geometry (17 layers) with k elements
// through each layer; k = 1 is the paper's base problem shape.
func NewSpheres(k int) *Spheres {
	return NewSpheresConfig(SpheresConfig{
		Layers:        NumLayers,
		ElemsPerLayer: k,
		CoreElems:     3 * k,
		OuterElems:    3 * k,
	})
}

// NewSpheresConfig builds the octant mesh for an arbitrary configuration
// (reduced layer counts give small test/scaling problems with the same
// structure).
func NewSpheresConfig(cfg SpheresConfig) *Spheres {
	if cfg.Layers < 1 || cfg.ElemsPerLayer < 1 || cfg.CoreElems < 1 || cfg.OuterElems < 1 {
		panic("problems: invalid SpheresConfig")
	}
	n := cfg.NumRadial()
	// Shell coordinates (cube radius s = i/n) of the region boundaries.
	sCore := float64(cfg.CoreElems) / float64(n)
	sShell := float64(cfg.CoreElems+cfg.Layers*cfg.ElemsPerLayer) / float64(n)

	// Radius map R(s): [0,sCore] -> [0,RIn], [sCore,sShell] -> [RIn,ROut],
	// [sShell,1] -> [ROut,OctantSide].
	radius := func(s float64) float64 {
		switch {
		case s <= sCore:
			return SphereRIn * s / sCore
		case s <= sShell:
			return SphereRIn + (SphereROut-SphereRIn)*(s-sCore)/(sShell-sCore)
		default:
			return SphereROut + (OctantSide-SphereROut)*(s-sShell)/(1-sShell)
		}
	}
	// Sphericity w(s): cube-like at the centre and outer boundary, exact
	// sphere through the layered band.
	sphericity := func(s float64) float64 {
		switch {
		case s <= sCore:
			return s / sCore
		case s <= sShell:
			return 1
		default:
			return (1 - s) / (1 - sShell)
		}
	}
	warp := func(p geom.Vec3) geom.Vec3 {
		s := math.Max(p.X, math.Max(p.Y, p.Z))
		if s == 0 {
			return geom.Vec3{}
		}
		q := p.Scale(1 / s) // on the unit cube shell
		d := p.Normalize()
		w := sphericity(s)
		r := radius(s)
		return d.Scale(w * r).Add(q.Scale((1 - w) * r))
	}

	m := mesh.StructuredHex(n, n, n, 1, 1, 1, nil)
	for v := range m.Coords {
		m.Coords[v] = warp(m.Coords[v])
	}
	// Material per element from the centroid radius (layer boundaries now
	// coincide with mesh shells, so every layer is a connected shell).
	for e, conn := range m.Elems {
		c := geom.Vec3{}
		for _, v := range conn {
			c = c.Add(m.Coords[v])
		}
		m.Mat[e] = cfg.MatAt(c.Scale(1.0 / 8))
	}

	cons := fem.NewConstraints()
	const tol = 1e-9
	for v, p := range m.Coords {
		// Symmetry planes of the octant.
		if p.X < tol {
			cons.FixDof(3*v, 0)
		}
		if p.Y < tol {
			cons.FixDof(3*v+1, 0)
		}
		if p.Z < tol {
			cons.FixDof(3*v+2, 0)
		}
		// Crushing displacement on the top surface.
		if p.Z > OctantSide-tol {
			cons.FixDof(3*v+2, TotalCrushUz)
		}
	}
	return &Spheres{
		Mesh:    m,
		Cons:    cons,
		Models:  material.Database(),
		HardMat: material.MatHard,
		Config:  cfg,
	}
}

// MatAt classifies a point of the octant: soft core, cfg.Layers alternating
// shell layers (hard first), soft outer cube.
func (c SpheresConfig) MatAt(p geom.Vec3) int {
	r := math.Sqrt(p.X*p.X + p.Y*p.Y + p.Z*p.Z)
	if r < SphereRIn || r > SphereROut {
		return material.MatSoft
	}
	layer := int((r - SphereRIn) / (SphereROut - SphereRIn) * float64(c.Layers))
	if layer >= c.Layers {
		layer = c.Layers - 1
	}
	if layer%2 == 0 {
		return material.MatHard
	}
	return material.MatSoft
}

// SphereMat classifies a point for the paper's 17-layer geometry.
func SphereMat(c geom.Vec3) int {
	return SpheresConfig{Layers: NumLayers}.MatAt(c)
}

// HardFraction returns the fraction of elements carrying the hard material
// (a geometry sanity metric).
func (s *Spheres) HardFraction() float64 {
	hard := 0
	for _, mt := range s.Mesh.Mat {
		if mt == material.MatHard {
			hard++
		}
	}
	return float64(hard) / float64(s.Mesh.NumElems())
}

// Cube is a single-material unit cube with the bottom face clamped and a
// uniform downward load on the top face — the quickstart problem.
type Cube struct {
	Mesh   *mesh.Mesh
	Cons   *fem.Constraints
	Load   []float64 // external force vector (full dofs)
	Models []material.Model
}

// NewCube builds an n×n×n cube of the given material.
func NewCube(n int, model material.Model, load float64) *Cube {
	m := mesh.StructuredHex(n, n, n, 1, 1, 1, nil)
	cons := fem.NewConstraints()
	f := make([]float64, m.NumDOF())
	for v, p := range m.Coords {
		if p.Z == 0 {
			cons.FixVert(v, 0, 0, 0)
		}
		if geom.ApproxEq(p.Z, 1, 1e-9) {
			f[3*v+2] = load
		}
	}
	return &Cube{Mesh: m, Cons: cons, Load: f, Models: []material.Model{model}}
}

// ThinSlab is the Figure 4-6 geometry: a plate one element thick.
func ThinSlab(nx, ny int, thickness float64) *mesh.Mesh {
	return mesh.StructuredHex(nx, ny, 1, float64(nx), float64(ny), thickness, nil)
}

// Cantilever is an elongated beam clamped at x = 0 with a tip shear load.
type Cantilever struct {
	Mesh   *mesh.Mesh
	Cons   *fem.Constraints
	Load   []float64
	Models []material.Model
}

// NewCantilever builds an nx×ny×nz beam of span length.
func NewCantilever(nx, ny, nz int, length float64, model material.Model, tipLoad float64) *Cantilever {
	m := mesh.StructuredHex(nx, ny, nz, length, 1, 1, nil)
	cons := fem.NewConstraints()
	f := make([]float64, m.NumDOF())
	for v, p := range m.Coords {
		if p.X == 0 {
			cons.FixVert(v, 0, 0, 0)
		}
		if geom.ApproxEq(p.X, length, 1e-9) {
			f[3*v+2] = tipLoad
		}
	}
	return &Cantilever{Mesh: m, Cons: cons, Load: f, Models: []material.Model{model}}
}

// PaperSizes returns the paper's Table 2 problem sizes (dof) and processor
// counts for reference in reports.
func PaperSizes() (dofs []int, procs []int) {
	dofs = []int{79679, 622815, 2085599, 4924223, 9594879, 16553759, 26257055, 39160959}
	procs = []int{2, 15, 50, 120, 240, 400, 640, 960}
	return
}
