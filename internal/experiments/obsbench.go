package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"
	"time"

	"prometheus/internal/core"
	"prometheus/internal/fem"
	"prometheus/internal/graph"
	"prometheus/internal/krylov"
	"prometheus/internal/multigrid"
	"prometheus/internal/obs"
	"prometheus/internal/par"
	"prometheus/internal/perf"
	"prometheus/internal/problems"
	"prometheus/internal/smooth"
	"prometheus/internal/sparse"
)

// ObsPhase is one measured solver phase: the wall-clock time around the
// call plus the flops the obs subsystem counted inside it.
type ObsPhase struct {
	Name   string `json:"name"`
	WallNs int64  `json:"wall_ns"`
	Flops  int64  `json:"flops"`
}

// ObsKernelRate is one kernel's measured throughput, computed entirely
// from obs counters (accumulated span time and credited flops) rather
// than from external timers — the "measured Mflop/s" of the study.
type ObsKernelRate struct {
	Name   string  `json:"name"`
	Calls  int64   `json:"calls"`
	Flops  int64   `json:"flops"`
	TimeNs int64   `json:"time_ns"`
	Mflops float64 `json:"mflops"`
}

// ObsEfficiency is the section 6 efficiency decomposition of a measured
// parallel halo-SpMV phase: per-rank flop/message/byte counters come
// from the obs par.rank event (measured, not modeled), and the machine
// model converts them into e_c and load-balance figures.
type ObsEfficiency struct {
	Ranks int   `json:"ranks"`
	Flops int64 `json:"flops"`
	Msgs  int64 `json:"msgs"`
	Bytes int64 `json:"bytes"`
	// Load is the average-to-max ratio of measured per-rank flops.
	Load float64 `json:"load"`
	// Eff is the full decomposition against the 1-rank base run.
	Eff perf.Efficiencies `json:"efficiencies"`
	// RatePerProc is the modeled per-processor flop rate given the
	// measured counters (flops/s).
	RatePerProc float64 `json:"rate_per_proc"`
}

// ObsOverhead compares an instrumented smoother sweep with obs off and
// on. Ratio is on/off; the CI overhead gate asserts it stays under
// 1.05 in bench_test.go, this report just records the measurement.
type ObsOverhead struct {
	OffNsPerOp float64 `json:"off_ns_per_op"`
	OnNsPerOp  float64 `json:"on_ns_per_op"`
	Ratio      float64 `json:"on_over_off"`
}

// ObsBenchReport is the machine-readable result of the observability
// study (schema documented in EXPERIMENTS.md, emitted as BENCH_PR5.json
// by CI).
type ObsBenchReport struct {
	Problem string `json:"problem"`
	Dof     int    `json:"dof"`
	NNZ     int    `json:"nnz"`
	Iters   int    `json:"iterations"`

	Phases  []ObsPhase      `json:"phases"`
	Kernels []ObsKernelRate `json:"kernels"`
	// SpMVMflopsCSR/BSR are the acceptance pair: measured sustained
	// rates of the two fine-operator SpMV kernels from obs counters.
	SpMVMflopsCSR float64 `json:"spmv_mflops_csr"`
	SpMVMflopsBSR float64 `json:"spmv_mflops_bsr"`

	Halo     ObsEfficiency `json:"halo"`
	Overhead ObsOverhead   `json:"overhead"`

	Levels  []obs.LevelInfo `json:"levels,omitempty"`
	Dropped int64           `json:"dropped"`
}

// kernelRate extracts one event's measured rate from a snapshot.
func kernelRate(p *obs.Profile, name string) ObsKernelRate {
	k := ObsKernelRate{Name: name}
	e, ok := p.Event(name)
	if !ok {
		return k
	}
	t := e.Totals()
	k.Calls, k.Flops, k.TimeNs = t.Count, t.Flops, t.TimeNs
	if t.TimeNs > 0 {
		k.Mflops = float64(t.Flops) / (float64(t.TimeNs) / 1e9) / 1e6
	}
	return k
}

// haloPhase runs iters halo SpMV products over a on ranks simulated
// ranks and returns the measured per-rank counters from the obs
// par.rank event. Each rank gets a private x copy (valid on owned
// entries); y is shared and written without conflict. Resets the obs
// recording: callers wanting the preceding profile snapshot it first.
func haloPhase(a *sparse.CSR, owner []int, ranks, iters int) (flops, msgs, bytes []int64, err error) {
	obs.Reset()
	h := par.NewHalo(a, owner, ranks)
	x := make([]float64, a.NRows)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	y := make([]float64, a.NRows)
	c := par.NewComm(ranks)
	c.Run(func(r *par.Rank) {
		xl := make([]float64, len(x))
		for i := range xl {
			if owner[i] == r.ID() {
				xl[i] = x[i]
			}
		}
		for it := 0; it < iters; it++ {
			h.MulVec(r, a, xl, y)
		}
	})
	p := obs.Snapshot()
	flops, msgs, bytes, ok := p.PerRank("par.rank")
	if !ok {
		return nil, nil, nil, fmt.Errorf("experiments: obsbench halo phase recorded no par.rank counters")
	}
	return flops, msgs, bytes, nil
}

// MeasuredHaloEfficiency runs the measured parallel halo-SpMV phase on
// 1 rank (base) and on ranks ranks, reading per-rank flop/message/byte
// counters from the obs par.rank event, and feeds them through the
// perf efficiency decomposition under the given machine model. This is
// the measured-counter bridge: e_c and the load balance come from
// counted traffic, not from the analytic communication model. Requires
// obs to be enabled; resets recorded obs data.
func MeasuredHaloEfficiency(a *sparse.CSR, owner []int, ranks, iters int, machine perf.Machine) (*ObsEfficiency, error) {
	if !obs.On() {
		return nil, fmt.Errorf("experiments: MeasuredHaloEfficiency needs obs enabled")
	}
	baseOwner := make([]int, a.NRows)
	bf, bm, bb, err := haloPhase(a, baseOwner, 1, iters)
	if err != nil {
		return nil, err
	}
	rf, rm, rb, err := haloPhase(a, owner, ranks, iters)
	if err != nil {
		return nil, err
	}
	baseMax, _ := machine.PhaseTime(bf, bm, bb)
	runMax, _ := machine.PhaseTime(rf, rm, rb)
	eff := &ObsEfficiency{
		Ranks: ranks,
		Flops: perf.Sum(rf),
		Msgs:  perf.Sum(rm),
		Bytes: perf.Sum(rb),
		Load:  perf.LoadBalance(rf),
	}
	baseRate := 0.0
	if baseMax > 0 {
		baseRate = float64(perf.Sum(bf)) / baseMax
	}
	if runMax > 0 {
		eff.RatePerProc = float64(perf.Sum(rf)) / runMax / float64(ranks)
	}
	eff.Eff = perf.Decompose(iters, iters, perf.Sum(bf), perf.Sum(rf),
		a.NRows, a.NRows, 1, ranks, baseRate, eff.RatePerProc, eff.Load)
	return eff, nil
}

// ObsBench runs the observability study on the spheres problem: every
// solver phase under obs spans, measured CSR-vs-BSR SpMV rates from obs
// counters, a measured parallel halo-SpMV phase fed through the perf
// efficiency decomposition, and the instrumentation overhead of an
// obs-on smoother sweep.
func ObsBench() (*ObsBenchReport, error) {
	const haloRanks = 4
	const haloIters = 40

	cfg := problems.SpheresConfig{Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2}
	s := problems.NewSpheresConfig(cfg)

	// The solve phase emits a span per kernel call per V-cycle level, so
	// the trace ring is sized well past the default to keep the capture
	// complete (drops are reported, never silent).
	obs.EnableWith(obs.Config{Ranks: haloRanks, RingCap: 1 << 17})
	defer obs.Disable()

	rep := &ObsBenchReport{
		Problem: fmt.Sprintf("spheres L=%d k=%d", cfg.Layers, cfg.ElemsPerLayer),
	}

	// Phase 1: mesh setup (coarsening). The obs core.coarsen span times
	// the same region; the report keeps wall clocks so the phases add up
	// even where assembly is not instrumented.
	phase := func(name string, fn func() error) error {
		obs.Reset()
		t0 := time.Now()
		if err := fn(); err != nil {
			return err
		}
		p := obs.Snapshot()
		var flops int64
		for _, e := range p.Events {
			flops += e.Totals().Flops
		}
		rep.Phases = append(rep.Phases, ObsPhase{Name: name, WallNs: time.Since(t0).Nanoseconds(), Flops: flops})
		rep.Dropped += p.Dropped
		return nil
	}

	var h *core.Hierarchy
	if err := phase("mesh setup", func() (err error) {
		h, err = core.Coarsen(s.Mesh, core.Options{})
		return
	}); err != nil {
		return nil, err
	}

	// Phase 2: fine grid (element integration + assembly), then reduce
	// with whole-vertex clamping so the operator keeps its 3x3 node
	// blocks (same constraint treatment as the blocked-storage study).
	p := fem.NewProblem(s.Mesh, s.Models, true)
	u := make([]float64, s.Mesh.NumDOF())
	s.Cons.Scaled(0.1).Apply(u)
	var kred *sparse.CSR
	var rred []float64
	var dm *fem.DofMap
	if err := phase("fine grid", func() error {
		k, fint, err := p.AssembleTangent(u)
		if err != nil {
			return err
		}
		zero := fem.NewConstraints()
		for d := range s.Cons.Fixed {
			zero.FixVert(d/3, 0, 0, 0)
		}
		dm = zero.NewDofMap(s.Mesh.NumDOF())
		r := make([]float64, len(fint))
		for i := range r {
			r[i] = -fint[i]
		}
		kred, rred = zero.Reduce(k, r, dm)
		if !dm.NodeAligned(3) {
			return fmt.Errorf("experiments: obsbench constraints are not node-aligned")
		}
		return nil
	}); err != nil {
		return nil, err
	}
	rep.Dof = kred.NRows
	rep.NNZ = kred.NNZ()

	// Phase 3: matrix setup (Galerkin products, factorizations).
	var rs []*sparse.CSR
	for l := 1; l < h.NumLevels(); l++ {
		rr := h.Grids[l].R
		if l == 1 {
			rr = multigrid.CompressCols(rr, dm.Full2Red, dm.NumFree())
		}
		rs = append(rs, rr)
	}
	var mg *multigrid.MG
	if err := phase("matrix setup", func() (err error) {
		mg, err = multigrid.New(kred, rs, multigrid.Options{Cycle: multigrid.VCycle, Storage: multigrid.StorageBSR})
		return
	}); err != nil {
		return nil, err
	}

	// Phase 4: solve. The snapshot of this phase also yields the level
	// table and iteration count.
	x := make([]float64, kred.NRows)
	var res krylov.Result
	if err := phase("solve", func() error {
		res = krylov.FPCG(kred, rred, x, mg, 1e-6, 2000)
		if !res.Converged {
			return fmt.Errorf("experiments: obsbench solve did not converge in %d its", res.Iterations)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	rep.Iters = res.Iterations
	rep.Levels = obs.Snapshot().Levels

	// Measured kernel rates: repeat the fine SpMV in both storages and
	// read time and flops back from the obs counters alone.
	kb, err := sparse.FromCSR(kred, 3)
	if err != nil {
		return nil, err
	}
	y := make([]float64, kred.NRows)
	obs.Reset()
	for i := 0; i < 50; i++ {
		kred.MulVec(x, y)
		kb.MulVec(x, y)
	}
	snap := obs.Snapshot()
	csr := kernelRate(snap, "sparse.spmv.csr")
	bsr := kernelRate(snap, "sparse.spmv.bsr")
	rep.Kernels = append(rep.Kernels, csr, bsr)
	rep.SpMVMflopsCSR = csr.Mflops
	rep.SpMVMflopsBSR = bsr.Mflops

	// Measured parallel efficiency: the same halo SpMV phase on 1 rank
	// (base) and haloRanks ranks, counters from obs, decomposition from
	// perf. Iteration and flop counts are identical by construction, so
	// the interesting factors are e_c and the load balance.
	ownerRed := make([]int, kred.NRows)
	vertOwner := graph.RCB(s.Mesh.Coords, haloRanks)
	for rIdx, full := range dm.Red2Full {
		ownerRed[rIdx] = vertOwner[full/3]
	}
	eff, err := MeasuredHaloEfficiency(kred, ownerRed, haloRanks, haloIters, perf.PaperIBM())
	if err != nil {
		return nil, err
	}
	rep.Halo = *eff

	// Instrumentation overhead: one blocked Jacobi sweep, obs off vs on.
	jac := smooth.NewJacobi(kb, 2.0/3)
	xs := make([]float64, kred.NRows)
	bench := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				jac.Smooth(xs, rred, 1)
			}
		})
		return float64(r.NsPerOp())
	}
	obs.Disable()
	rep.Overhead.OffNsPerOp = bench()
	// The obs-on measurement saturates the bounded trace ring by design
	// (tens of thousands of sweeps); its drops are a microbenchmark
	// artifact, so they are not added to the report's Dropped count.
	obs.Enable()
	rep.Overhead.OnNsPerOp = bench()
	if rep.Overhead.OffNsPerOp > 0 {
		rep.Overhead.Ratio = rep.Overhead.OnNsPerOp / rep.Overhead.OffNsPerOp
	}
	return rep, nil
}

// WriteObsBenchJSON writes the report as indented JSON.
func WriteObsBenchJSON(w io.Writer, rep *ObsBenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ObsBenchTable renders the report as the human-readable study.
func ObsBenchTable(w io.Writer, rep *ObsBenchReport) {
	fmt.Fprintf(w, "Observability study (%s, %d dof, %d nnz, %d its)\n", rep.Problem, rep.Dof, rep.NNZ, rep.Iters)
	fmt.Fprintf(w, "%-14s %12s %16s\n", "phase", "wall (ms)", "counted flops")
	for _, ph := range rep.Phases {
		fmt.Fprintf(w, "%-14s %12.2f %16d\n", ph.Name, float64(ph.WallNs)/1e6, ph.Flops)
	}
	fmt.Fprintf(w, "%-22s %8s %14s %12s %10s\n", "kernel", "calls", "flops", "time (ms)", "Mflop/s")
	for _, k := range rep.Kernels {
		fmt.Fprintf(w, "%-22s %8d %14d %12.2f %10.0f\n", k.Name, k.Calls, k.Flops, float64(k.TimeNs)/1e6, k.Mflops)
	}
	h := rep.Halo
	fmt.Fprintf(w, "halo phase (%d ranks): %d flops, %d msgs, %d bytes\n", h.Ranks, h.Flops, h.Msgs, h.Bytes)
	fmt.Fprintf(w, "  load %.3f  e_c %.3f  e^I_s %.3f  e^F_s %.3f  total %.3f\n",
		h.Load, h.Eff.Ec, h.Eff.EIs, h.Eff.EFs, h.Eff.Total)
	fmt.Fprintf(w, "smoother overhead obs on/off: %.3fx (%.0f vs %.0f ns/op)\n",
		rep.Overhead.Ratio, rep.Overhead.OnNsPerOp, rep.Overhead.OffNsPerOp)
	if rep.Dropped > 0 {
		fmt.Fprintf(w, "WARNING: %d trace samples dropped (raise obs.Config caps)\n", rep.Dropped)
	}
}
