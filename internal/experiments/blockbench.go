package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"prometheus/internal/core"
	"prometheus/internal/multigrid"
	"prometheus/internal/problems"
	"prometheus/internal/smooth"
	"prometheus/internal/sparse"
)

// BenchEntry is one measured kernel of the blocked-storage study. Bytes
// per op counts the matrix data a kernel streams (values + column indices
// + row pointers) plus one read of x and one write of y, so MB/s exposes
// the index-traffic saving of BSR directly.
type BenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// BlockBenchReport is the machine-readable result of the CSR-vs-BSR
// kernel study (schema documented in EXPERIMENTS.md).
type BlockBenchReport struct {
	Problem string `json:"problem"`
	Dof     int    `json:"dof"`
	NNZ     int    `json:"nnz"`
	// SpMVSpeedup is BSR SpMV throughput over CSR SpMV throughput on the
	// fine operator (the acceptance metric of the blocked refactor).
	SpMVSpeedup float64      `json:"spmv_bsr_over_csr"`
	Entries     []BenchEntry `json:"benchmarks"`
}

// csrBytes is the data volume one CSR MulVec streams.
func csrBytes(a *sparse.CSR) int64 {
	return int64(8*a.NNZ() + 8*a.NNZ() + 8*(a.NRows+1) + 16*a.NRows)
}

// bsrBytes is the data volume one BSR MulVec streams: same values, one
// column index per block instead of per entry.
func bsrBytes(a *sparse.BSR) int64 {
	return int64(8*a.NNZ() + 8*a.NNZBlocks() + 8*(a.NBRows+1) + 16*a.Rows())
}

// BlockBench builds the 3-dof spheres fine operator in both storages and
// measures SpMV, smoother sweeps and the full multigrid V-cycle. All
// pairs run on bitwise-identical matrices (BSR is the re-blocked CSR).
func BlockBench() (*BlockBenchReport, error) {
	ks, err := newKernelSystem(problems.SpheresConfig{Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2})
	if err != nil {
		return nil, err
	}
	kred, kb, rred := ks.Kred, ks.KB, ks.Rred

	rep := &BlockBenchReport{
		Problem: ks.Problem(),
		Dof:     kred.NRows,
		NNZ:     kred.NNZ(),
	}
	n := kred.NRows
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%13) - 6
	}

	add := func(name string, bytes int64, fn func()) *BenchEntry {
		res := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		e := BenchEntry{
			Name:        name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if res.NsPerOp() > 0 {
			e.MBPerSec = float64(bytes) / float64(res.NsPerOp()) * 1e9 / 1e6
		}
		rep.Entries = append(rep.Entries, e)
		return &rep.Entries[len(rep.Entries)-1]
	}

	// SpMV on the fine operator: the acceptance pair.
	eCSR := add("spmv_csr_fine", csrBytes(kred), func() { kred.MulVec(x, y) })
	eBSR := add("spmv_bsr_fine", bsrBytes(kb), func() { kb.MulVec(x, y) })
	if eBSR.NsPerOp > 0 {
		rep.SpMVSpeedup = eCSR.NsPerOp / eBSR.NsPerOp
	}

	// Smoother sweeps (one Smooth call = 1 sweep over the operator).
	xs := make([]float64, n)
	jacC := smooth.NewJacobi(kred, 2.0/3)
	jacB := smooth.NewJacobi(kb, 2.0/3)
	gsC := smooth.NewGaussSeidel(kred, 1, true)
	gsB := smooth.NewGaussSeidel(kb, 1, true)
	nbj, err := smooth.NewNodeBlockJacobi(kb, 2.0/3)
	if err != nil {
		return nil, err
	}
	add("jacobi_csr_sweep", csrBytes(kred), func() { jacC.Smooth(xs, rred, 1) })
	add("jacobi_bsr_sweep", bsrBytes(kb), func() { jacB.Smooth(xs, rred, 1) })
	add("gauss_seidel_csr_sweep", csrBytes(kred), func() { gsC.Smooth(xs, rred, 1) })
	add("gauss_seidel_bsr_sweep", bsrBytes(kb), func() { gsB.Smooth(xs, rred, 1) })
	add("node_block_jacobi_sweep", bsrBytes(kb), func() { nbj.Smooth(xs, rred, 1) })

	// Full V-cycle on both hierarchies.
	h, err := core.Coarsen(ks.S.Mesh, core.Options{})
	if err != nil {
		return nil, err
	}
	var rs []*sparse.CSR
	for l := 1; l < h.NumLevels(); l++ {
		rr := h.Grids[l].R
		if l == 1 {
			rr = multigrid.CompressCols(rr, ks.DM.Full2Red, ks.DM.NumFree())
		}
		rs = append(rs, rr)
	}
	mkMG := func(st multigrid.StorageKind) (*multigrid.MG, error) {
		return multigrid.New(kred, rs, multigrid.Options{Cycle: multigrid.VCycle, Storage: st})
	}
	mgC, err := mkMG(multigrid.StorageCSR)
	if err != nil {
		return nil, err
	}
	mgB, err := mkMG(multigrid.StorageBSR)
	if err != nil {
		return nil, err
	}
	z := make([]float64, n)
	add("vcycle_csr", csrBytes(kred), func() { mgC.Apply(rred, z) })
	add("vcycle_bsr", bsrBytes(kb), func() { mgB.Apply(rred, z) })
	return rep, nil
}

// WriteBlockBenchJSON writes the report as indented JSON.
func WriteBlockBenchJSON(w io.Writer, rep *BlockBenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// BlockBenchTable renders the report as the human-readable study.
func BlockBenchTable(w io.Writer, rep *BlockBenchReport) {
	fmt.Fprintf(w, "Blocked storage study (%s, %d dof, %d nnz)\n", rep.Problem, rep.Dof, rep.NNZ)
	fmt.Fprintf(w, "%-26s %12s %10s %10s\n", "kernel", "ns/op", "MB/s", "allocs/op")
	for _, e := range rep.Entries {
		fmt.Fprintf(w, "%-26s %12.0f %10.0f %10d\n", e.Name, e.NsPerOp, e.MBPerSec, e.AllocsPerOp)
	}
	fmt.Fprintf(w, "SpMV speedup BSR/CSR: %.2fx\n", rep.SpMVSpeedup)
}
