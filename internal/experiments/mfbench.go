package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"testing"

	"prometheus/internal/core"
	"prometheus/internal/fem"
	"prometheus/internal/geom"
	"prometheus/internal/krylov"
	"prometheus/internal/material"
	"prometheus/internal/mesh"
	"prometheus/internal/multigrid"
	"prometheus/internal/sparse"
)

// MFBenchEntry is one {size, storage} configuration of the matrix-free
// study: the fine-level storage footprint, the fine apply cost, the
// V-cycle cost and the FPCG iteration count under the shared Chebyshev
// smoother.
type MFBenchEntry struct {
	Size            string  `json:"size"`
	Config          string  `json:"config"`
	FineBytes       int64   `json:"fine_bytes"`
	FineBytesPerDof float64 `json:"fine_bytes_per_dof"`
	ApplyNsPerOp    float64 `json:"apply_ns_per_op"`
	ApplyMflops     float64 `json:"apply_spmv_equiv_mflops"`
	VCycleNsPerOp   float64 `json:"vcycle_ns_per_op"`
	Iterations      int     `json:"fpcg_iterations"`
}

// MFBenchSize carries the per-size acceptance metrics of the study: the
// matrix-free fine level must be smaller than assembled CSR (bytes/dof
// ratio < 1), must cost at most one extra FPCG iteration under the
// identical smoother, and must be run-twice bitwise deterministic.
type MFBenchSize struct {
	Size                    string  `json:"size"`
	Dof                     int     `json:"dof"`
	NNZ                     int     `json:"nnz"`
	Levels                  int     `json:"levels"`
	BytesPerDofRatioMFvsCSR float64 `json:"bytes_per_dof_ratio_mf_vs_csr"`
	IterDeltaMF             int     `json:"iter_delta_mf_vs_csr"`
	MFDeterministic         bool    `json:"mf_bitwise_deterministic"`
}

// MFBenchReport is the machine-readable result of the matrix-free
// storage-mode study (schema documented in EXPERIMENTS.md).
type MFBenchReport struct {
	Problem string         `json:"problem"`
	Sizes   []MFBenchSize  `json:"sizes"`
	Entries []MFBenchEntry `json:"entries"`
}

// mfSystem is one assembled-vs-matrix-free cube elasticity system: the
// reduced CSR and BSR forms, the element-by-element operator over the
// same element set, the reduced load, and the shared restriction chain.
type mfSystem struct {
	n    int
	kred *sparse.CSR
	kb   *sparse.BSR
	op   *fem.EBEOperator
	fred []float64
	rs   []*sparse.CSR
}

// newMFSystem builds the n^3-hex cube (bottom face fixed, top face
// loaded) in all three storage modes, sharing one mesh, one constraint
// set and one geometric restriction chain so every difference in the
// measurements comes from the storage mode alone.
func newMFSystem(n int) (*mfSystem, error) {
	m := mesh.StructuredHex(n, n, n, 1, 1, 1, nil)
	p := fem.NewProblem(m, []material.Model{material.LinearElastic{E: 1, Nu: 0.3}}, false)
	u := make([]float64, m.NumDOF())
	k, _, err := p.AssembleTangent(u)
	if err != nil {
		return nil, err
	}
	c := fem.NewConstraints()
	for _, v := range m.VertsWhere(func(q geom.Vec3) bool { return q.Z == 0 }) {
		c.FixVert(v, 0, 0, 0)
	}
	f := make([]float64, m.NumDOF())
	for _, v := range m.VertsWhere(func(q geom.Vec3) bool { return geom.ApproxEq(q.Z, 1, 1e-9) }) {
		f[3*v+2] = -0.001
	}
	dm := c.NewDofMap(m.NumDOF())
	kred, fred := c.Reduce(k, f, dm)
	if !dm.NodeAligned(3) {
		return nil, fmt.Errorf("experiments: mfbench constraints are not node-aligned")
	}
	kb, err := sparse.FromCSR(kred, 3)
	if err != nil {
		return nil, err
	}
	op, err := fem.NewEBEOperator(p, u, c, dm)
	if err != nil {
		return nil, err
	}
	h, err := core.Coarsen(m, core.Options{MinCoarse: 30})
	if err != nil {
		return nil, err
	}
	var rs []*sparse.CSR
	for l := 1; l < h.NumLevels(); l++ {
		r := h.Grids[l].R
		if l == 1 {
			r = multigrid.CompressCols(r, dm.Full2Red, dm.NumFree())
		}
		rs = append(rs, r)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("experiments: mfbench cube n=%d coarsened to a single level", n)
	}
	return &mfSystem{n: n, kred: kred, kb: kb, op: op, fred: fred, rs: rs}, nil
}

// mfSolve runs one preconditioned solve: a fresh multigrid over the fine
// operator (the storage kind decides the coarse-level forms) with the
// apply-only Chebyshev smoother every storage mode supports, then FPCG.
func (s *mfSystem) mfSolve(a sparse.Operator, st multigrid.StorageKind) ([]float64, krylov.Result, *multigrid.MG, error) {
	mg, err := multigrid.New(a, s.rs, multigrid.Options{Storage: st, Smoother: multigrid.Chebyshev})
	if err != nil {
		return nil, krylov.Result{}, nil, err
	}
	x := make([]float64, a.Rows())
	res := krylov.FPCG(a, s.fred, x, mg, 1e-8, 400)
	if !res.Converged {
		return nil, res, nil, fmt.Errorf("experiments: mfbench FPCG did not converge in %d iterations", res.Iterations)
	}
	return x, res, mg, nil
}

// MFBench measures what the matrix-free element-by-element fine level
// trades against the assembled forms on two cube sizes: storage (packed
// symmetric element stiffnesses beat assembled CSR on bytes/dof), apply
// throughput (the redundant element-boundary work shows up as a lower
// SpMV-equivalent Mflop/s), and preconditioned convergence (iteration
// parity within one under the identical Chebyshev smoother, since the
// products differ from assembled ones only by per-row ULPs).
func MFBench() (*MFBenchReport, error) {
	rep := &MFBenchReport{Problem: "cube elasticity, hex8"}
	for _, n := range []int{4, 6} {
		sys, err := newMFSystem(n)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("cube n=%d", n)
		dof := sys.kred.Rows()
		nnz := sys.kred.NNZ()
		spmvFlops := 2 * float64(nnz)

		type config struct {
			name string
			a    sparse.Operator
			st   multigrid.StorageKind
		}
		configs := []config{
			{"csr", sys.kred, multigrid.StorageCSR},
			{"bsr", sys.kb, multigrid.StorageBSR},
			{"mf", sys.op, multigrid.StorageMatrixFree},
		}
		its := map[string]int{}
		bytesPerDof := map[string]float64{}
		levels := 0
		for _, c := range configs {
			_, res, mg, err := sys.mfSolve(c.a, c.st)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", label, c.name, err)
			}
			levels = len(mg.Levels)
			fineBytes := sparse.StorageBytes(c.a)

			x := make([]float64, c.a.Cols())
			y := make([]float64, c.a.Rows())
			for i := range x {
				x[i] = float64(i%7) - 3
			}
			ares := testing.Benchmark(func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.a.MulVec(x, y)
				}
			})
			z := make([]float64, c.a.Rows())
			vres := testing.Benchmark(func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mg.Apply(sys.fred, z)
				}
			})

			e := MFBenchEntry{
				Size:            label,
				Config:          c.name,
				FineBytes:       fineBytes,
				FineBytesPerDof: float64(fineBytes) / float64(dof),
				ApplyNsPerOp:    float64(ares.NsPerOp()),
				VCycleNsPerOp:   float64(vres.NsPerOp()),
				Iterations:      res.Iterations,
			}
			if ares.NsPerOp() > 0 {
				// SpMV-equivalent: useful flops are those of the assembled
				// product, so the matrix-free mode's redundant
				// element-boundary arithmetic honestly lowers its rate.
				e.ApplyMflops = spmvFlops / float64(ares.NsPerOp()) * 1e3
			}
			rep.Entries = append(rep.Entries, e)
			its[c.name] = res.Iterations
			bytesPerDof[c.name] = e.FineBytesPerDof
		}

		// Run-twice determinism: a fresh hierarchy and a fresh FPCG over
		// the matrix-free operator must reproduce every solution bit.
		x1, r1, _, err := sys.mfSolve(sys.op, multigrid.StorageMatrixFree)
		if err != nil {
			return nil, err
		}
		x2, r2, _, err := sys.mfSolve(sys.op, multigrid.StorageMatrixFree)
		if err != nil {
			return nil, err
		}
		det := r1.Iterations == r2.Iterations
		for i := range x1 {
			if math.Float64bits(x1[i]) != math.Float64bits(x2[i]) {
				det = false
				break
			}
		}

		rep.Sizes = append(rep.Sizes, MFBenchSize{
			Size:                    label,
			Dof:                     dof,
			NNZ:                     nnz,
			Levels:                  levels,
			BytesPerDofRatioMFvsCSR: bytesPerDof["mf"] / bytesPerDof["csr"],
			IterDeltaMF:             its["mf"] - its["csr"],
			MFDeterministic:         det,
		})
	}
	return rep, nil
}

// WriteMFBenchJSON writes the report as indented JSON.
func WriteMFBenchJSON(w io.Writer, rep *MFBenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// MFBenchTable renders the report as the human-readable study.
func MFBenchTable(w io.Writer, rep *MFBenchReport) {
	fmt.Fprintf(w, "Matrix-free storage-mode study (%s)\n", rep.Problem)
	fmt.Fprintf(w, "%-10s %-6s %12s %12s %14s %12s %6s\n",
		"size", "config", "fine B/dof", "apply ns", "spmv Mflop/s", "vcycle ns", "its")
	for _, e := range rep.Entries {
		fmt.Fprintf(w, "%-10s %-6s %12.1f %12.0f %14.0f %12.0f %6d\n",
			e.Size, e.Config, e.FineBytesPerDof, e.ApplyNsPerOp, e.ApplyMflops,
			e.VCycleNsPerOp, e.Iterations)
	}
	for _, s := range rep.Sizes {
		fmt.Fprintf(w, "%s: %d dof, %d levels, mf/csr fine bytes/dof %.2fx, iter delta %+d, mf deterministic %v\n",
			s.Size, s.Dof, s.Levels, s.BytesPerDofRatioMFvsCSR, s.IterDeltaMF, s.MFDeterministic)
	}
}
