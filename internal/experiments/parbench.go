package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"

	"prometheus/internal/pool"
	"prometheus/internal/problems"
	"prometheus/internal/smooth"
)

// ParBenchPoint is one measured worker count on a kernel's speedup curve.
type ParBenchPoint struct {
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	Speedup     float64 `json:"speedup_vs_serial"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// ParBenchKernel is the speedup curve of one row-partitioned kernel: the
// serial baseline, one point per worker count, and whether every parallel
// result was bitwise identical to the serial one (the correctness half of
// the study — the ownership verifier proves the partition disjoint, and
// identical bits witness that disjointness at runtime).
type ParBenchKernel struct {
	Name     string          `json:"name"`
	SerialNs float64         `json:"serial_ns_per_op"`
	Bitwise  bool            `json:"bitwise_identical"`
	Points   []ParBenchPoint `json:"points"`
}

// ParBenchReport is the machine-readable result of the real-core
// shared-memory study (schema documented in EXPERIMENTS.md). NumCPU
// records the host parallelism: speedups above 1 are only expected when
// the host has more than one core, and the report is honest either way.
type ParBenchReport struct {
	Problem    string           `json:"problem"`
	Dof        int              `json:"dof"`
	NNZ        int              `json:"nnz"`
	NumCPU     int              `json:"num_cpu"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Kernels    []ParBenchKernel `json:"kernels"`
}

// parWorkerCounts is the measured pool sizes: 1 (the serial fallback
// inside Dispatch), 2 (the smallest real fan-out, exercised even on a
// single-core host), then powers of two up to and including NumCPU.
func parWorkerCounts() []int {
	max := runtime.NumCPU()
	counts := []int{1, 2}
	for w := 4; w < max; w *= 2 {
		counts = append(counts, w)
	}
	if max > 2 {
		counts = append(counts, max)
	}
	return counts
}

// sameVec reports bit-for-bit element equality — the bitwise-identity
// check, strict enough to distinguish -0 from +0.
func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// ParBench measures the real-core shared-memory kernels — CSR and BSR
// SpMV and the pool-backed Jacobi sweep — across worker counts on the
// 3-dof spheres operator, verifying at every count that the parallel
// result is bitwise identical to the serial kernel before timing it.
func ParBench() (*ParBenchReport, error) {
	ks, err := newKernelSystem(problems.SpheresConfig{Layers: 5, ElemsPerLayer: 2, CoreElems: 4, OuterElems: 4})
	if err != nil {
		return nil, err
	}
	kred, kb, rred := ks.Kred, ks.KB, ks.Rred
	rep := &ParBenchReport{
		Problem:    ks.Problem(),
		Dof:        kred.NRows,
		NNZ:        kred.NNZ(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	n := kred.NRows
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%13) - 6
	}

	measure := func(fn func()) (float64, int64) {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		return float64(res.NsPerOp()), res.AllocsPerOp()
	}

	// study runs one kernel across the worker counts. serial must fill
	// its output; parallel receives each pool once and returns the per-op
	// function, so per-pool setup (smoother construction) stays out of
	// the timed loop; both must be deterministic so the bitwise check is
	// meaningful.
	study := func(name string, serial func(y []float64), parallel func(p *pool.Pool) func(y []float64)) {
		k := ParBenchKernel{Name: name, Bitwise: true}
		ySer := make([]float64, n)
		serial(ySer)
		k.SerialNs, _ = measure(func() { serial(ySer) })
		serial(ySer) // re-establish the reference after the timing loop
		for _, nw := range parWorkerCounts() {
			p := pool.New(nw)
			op := parallel(p)
			yPar := make([]float64, n)
			op(yPar)
			if !sameVec(ySer, yPar) {
				k.Bitwise = false
			}
			ns, allocs := measure(func() { op(yPar) })
			pt := ParBenchPoint{Workers: nw, NsPerOp: ns, AllocsPerOp: allocs}
			if ns > 0 {
				pt.Speedup = k.SerialNs / ns
			}
			k.Points = append(k.Points, pt)
			p.Close()
		}
		rep.Kernels = append(rep.Kernels, k)
	}

	study("spmv_csr",
		func(y []float64) { kred.MulVec(x, y) },
		func(p *pool.Pool) func(y []float64) {
			return func(y []float64) { kred.MulVecParallel(p, x, y) }
		})
	study("spmv_bsr",
		func(y []float64) { kb.MulVec(x, y) },
		func(p *pool.Pool) func(y []float64) {
			return func(y []float64) { kb.MulVecParallel(p, x, y) }
		})

	// The Jacobi study smooths from a fixed start: out is the iterate,
	// and one op is a fixed number of sweeps so serial and parallel run
	// identical arithmetic per op.
	const sweeps = 2
	jac := smooth.NewJacobi(kb, 2.0/3)
	study("jacobi_bsr_sweeps",
		func(y []float64) {
			clear(y)
			jac.Smooth(y, rred, sweeps)
		},
		func(p *pool.Pool) func(y []float64) {
			pj := smooth.NewParallelJacobi(kb, 2.0/3, p)
			return func(y []float64) {
				clear(y)
				pj.Smooth(y, rred, sweeps)
			}
		})
	return rep, nil
}

// WriteParBenchJSON writes the report as indented JSON.
func WriteParBenchJSON(w io.Writer, rep *ParBenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ParBenchTable renders the report as the human-readable study.
func ParBenchTable(w io.Writer, rep *ParBenchReport) {
	fmt.Fprintf(w, "Real-core shared-memory study (%s, %d dof, %d nnz, %d cpus, GOMAXPROCS=%d)\n",
		rep.Problem, rep.Dof, rep.NNZ, rep.NumCPU, rep.GoMaxProcs)
	for _, k := range rep.Kernels {
		fmt.Fprintf(w, "%-18s serial %10.0f ns/op   bitwise identical: %v\n", k.Name, k.SerialNs, k.Bitwise)
		for _, pt := range k.Points {
			fmt.Fprintf(w, "  %2d workers %14.0f ns/op %7.2fx %6d allocs/op\n",
				pt.Workers, pt.NsPerOp, pt.Speedup, pt.AllocsPerOp)
		}
	}
	if rep.NumCPU == 1 {
		fmt.Fprintln(w, "note: single-cpu host — curves measure dispatch overhead, not scaling")
	}
}
