// Package experiments regenerates every table and figure of the paper's
// evaluation (section 7) on laptop-scale reproductions of the model
// problem. The scaled series holds degrees of freedom per simulated rank
// roughly constant, exactly the paper's protocol; timings come from wall
// clocks for the phase breakdown and from the calibrated machine model of
// internal/perf for the cluster-scale efficiency figures. See DESIGN.md
// for the experiment index (E1-E19) and EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"prometheus/internal/core"
	"prometheus/internal/fem"
	"prometheus/internal/graph"
	"prometheus/internal/krylov"
	"prometheus/internal/multigrid"
	"prometheus/internal/par"
	"prometheus/internal/perf"
	"prometheus/internal/problems"
	"prometheus/internal/sparse"
)

// SizeSpec is one point of the scaled study.
type SizeSpec struct {
	Name  string
	Cfg   problems.SpheresConfig
	Ranks int
}

// TargetDofPerRank is the scaled-down analogue of the paper's ~40k dof per
// processor.
const TargetDofPerRank = 1500

// Series returns the scaled problem series: the reduced (5-layer) geometry
// with k = 1..maxK elements per layer, simulated rank counts chosen to
// hold dof/rank constant. With TargetDofPerRank = 1500 the rank series
// comes out 2, 14, 44, ... mirroring the paper's 2, 15, 50, ...
func Series(maxK int) []SizeSpec {
	var out []SizeSpec
	for k := 1; k <= maxK; k++ {
		cfg := problems.SpheresConfig{
			Layers: 5, ElemsPerLayer: k, CoreElems: 2 * k, OuterElems: 2 * k,
		}
		n := cfg.NumRadial()
		dof := 3 * (n + 1) * (n + 1) * (n + 1)
		ranks := dof / TargetDofPerRank
		if ranks < 2 {
			ranks = 2
		}
		out = append(out, SizeSpec{
			Name:  fmt.Sprintf("k=%d", k),
			Cfg:   cfg,
			Ranks: ranks,
		})
	}
	return out
}

// LinearRun is the outcome of one scaled linear solve (the section 7.1
// study: tangent of the first Newton iteration, rtol = 1e-4).
type LinearRun struct {
	Spec   SizeSpec
	Dof    int // total dofs (3 per vertex)
	Free   int // free dofs after constraints
	Levels int
	Iters  int
	Lost   int // lost vertices across all levels

	// Wall-clock phase breakdown (Figure 10 components).
	Wall map[string]time.Duration

	// Exact flop counts.
	SolveFlops int64 // Krylov + cycles + smoothers
	SetupFlops int64 // Galerkin products + factorizations
	FineFlops  int64 // element integration (FEAP phase)

	// Per-rank modeled work (solve phase).
	RankFlops []int64
	RankBytes []int64
	RankMsgs  []int64

	// Machine-model solve times.
	ModelSolveMax float64
	ModelSolveAvg float64
	// ModelMflops is the modeled aggregate rate (total flops / max time).
	ModelMflops float64
}

// RunLinear executes one point of the scaled study.
func RunLinear(spec SizeSpec, machine perf.Machine, mgOpts multigrid.Options) (*LinearRun, error) {
	phases := perf.NewPhases()
	out := &LinearRun{Spec: spec, Wall: map[string]time.Duration{}}

	s := problems.NewSpheresConfig(spec.Cfg)
	out.Dof = s.Mesh.NumDOF()

	// Partitioning (the paper's Athena/ParMetis phase): RCB over vertices.
	var owner []int
	phases.Time("partition", func() {
		owner = graph.RCB(s.Mesh.Coords, spec.Ranks)
	})

	// Mesh setup (Prometheus): coarsening and restriction construction.
	var h *core.Hierarchy
	var err error
	phases.Time("mesh setup", func() {
		h, err = core.Coarsen(s.Mesh, core.Options{})
	})
	if err != nil {
		return nil, err
	}
	out.Levels = h.NumLevels()
	for _, g := range h.Grids {
		out.Lost += g.Lost
	}

	// Fine grid creation (FEAP): element integration and assembly of the
	// first Newton tangent (crush scaled to the first of ten steps).
	p := fem.NewProblem(s.Mesh, s.Models, true)
	p.Workers = assemblyWorkers()
	u := make([]float64, s.Mesh.NumDOF())
	s.Cons.Scaled(0.1).Apply(u)
	var k *sparse.CSR
	var fint []float64
	phases.Time("fine grid", func() {
		k, fint, err = p.AssembleTangent(u)
	})
	if err != nil {
		return nil, err
	}
	out.FineFlops = p.AssembleFlops

	zero := fem.NewConstraints()
	for d := range s.Cons.Fixed {
		zero.FixDof(d, 0)
	}
	dm := zero.NewDofMap(s.Mesh.NumDOF())
	r := make([]float64, len(fint))
	for i := range r {
		r[i] = -fint[i]
	}
	kred, rred := zero.Reduce(k, r, dm)
	out.Free = kred.NRows

	// Matrix setup (Epimetheus/PETSc): Galerkin products, factorizations.
	var rs []*sparse.CSR
	for l := 1; l < h.NumLevels(); l++ {
		rr := h.Grids[l].R
		if l == 1 {
			rr = multigrid.CompressCols(rr, dm.Full2Red, dm.NumFree())
		}
		rs = append(rs, rr)
	}
	var mg *multigrid.MG
	phases.Time("matrix setup", func() {
		mg, err = multigrid.New(kred, rs, mgOpts)
	})
	if err != nil {
		return nil, err
	}
	out.SetupFlops = mg.SetupFlops

	// Solve for x: FPCG to the paper's first-solve tolerance.
	x := make([]float64, kred.NRows)
	var res krylov.Result
	phases.Time("solve", func() {
		res = krylov.FPCG(kred, rred, x, mg, 1e-4, 2000)
	})
	if !res.Converged {
		return nil, fmt.Errorf("experiments: %s did not converge in %d its", spec.Name, res.Iterations)
	}
	out.Iters = res.Iterations
	out.SolveFlops = res.Flops + mg.Flops()
	out.Wall["partition"] = phases.Wall["partition"]
	out.Wall["mesh setup"] = phases.Wall["mesh setup"]
	out.Wall["fine grid"] = phases.Wall["fine grid"]
	out.Wall["matrix setup"] = phases.Wall["matrix setup"]
	out.Wall["solve"] = phases.Wall["solve"]

	// Distribute the measured work over the simulated ranks and model the
	// solve time.
	if err := out.model(h, dm, owner, kred, mg, spec.Ranks, machine); err != nil {
		return nil, err
	}
	return out, nil
}

// model distributes measured per-level flops across ranks in proportion to
// owned matrix rows (nnz) and derives halo communication volumes from the
// actual level operators under the inherited RCB partition.
func (lr *LinearRun) model(h *core.Hierarchy, dm *fem.DofMap, fineVertOwner []int,
	kred *sparse.CSR, mg *multigrid.MG, ranks int, machine perf.Machine) error {

	// Owner per dof, per level. Level 0: reduced dofs -> fine vertex owner.
	levelOwners := make([][]int, mg.NumLevels())
	o0 := make([]int, kred.NRows)
	for rIdx, full := range dm.Red2Full {
		o0[rIdx] = fineVertOwner[full/3]
	}
	levelOwners[0] = o0
	// Coarser levels: chain the Verts maps (grid l vertex j came from grid
	// l-1 vertex Verts[j]).
	vertOwner := fineVertOwner
	for l := 1; l < h.NumLevels(); l++ {
		g := h.Grids[l]
		co := make([]int, g.Mesh.NumVerts())
		for j, v := range g.Verts {
			co[j] = vertOwner[v]
		}
		vertOwner = co
		od := make([]int, 3*g.Mesh.NumVerts())
		for j, ow := range co {
			od[3*j] = ow
			od[3*j+1] = ow
			od[3*j+2] = ow
		}
		if l < mg.NumLevels() {
			levelOwners[l] = od
		}
	}

	lr.RankFlops = make([]int64, ranks)
	lr.RankBytes = make([]int64, ranks)
	lr.RankMsgs = make([]int64, ranks)
	levelWork := mg.LevelWork()
	// Add the Krylov vector work to level 0.
	levelWork[0] += lr.SolveFlops - perf.Sum(levelWork)

	for l, lvl := range mg.Levels {
		// The communication model traverses rows; take a scalar view of the
		// level operator (identity for CSR levels, expansion for BSR).
		a := sparse.AsCSR(lvl.A)
		owners := levelOwners[l]
		if len(owners) != a.NRows {
			return fmt.Errorf("experiments: owner mismatch at level %d: %d vs %d", l, len(owners), a.NRows)
		}
		// Owned nnz per rank.
		nnzOwned := make([]int64, ranks)
		for i := 0; i < a.NRows; i++ {
			nnzOwned[owners[i]] += int64(a.RowNNZ(i))
		}
		total := int64(a.NNZ())
		if total == 0 {
			continue
		}
		// Matvec-equivalent applications on this level.
		apps := float64(levelWork[l]) / float64(2*total)
		halo := par.NewHalo(a, owners, ranks)
		for rk := 0; rk < ranks; rk++ {
			lr.RankFlops[rk] += int64(float64(levelWork[l]) * float64(nnzOwned[rk]) / float64(total))
			ghosts := halo.GhostCount(rk)
			lr.RankBytes[rk] += int64(8 * float64(ghosts) * apps)
			if ghosts > 0 {
				// One message round per application per neighbouring rank;
				// approximate the neighbour count by ghosts^(0) bounded by
				// ranks-1 — use a conservative 6-neighbour stencil typical
				// of RCB partitions.
				nb := 6
				if nb > ranks-1 {
					nb = ranks - 1
				}
				lr.RankMsgs[rk] += int64(float64(nb) * apps)
			}
		}
	}
	lr.ModelSolveMax, lr.ModelSolveAvg = machine.PhaseTime(lr.RankFlops, lr.RankMsgs, lr.RankBytes)
	if lr.ModelSolveMax > 0 {
		lr.ModelMflops = float64(perf.Sum(lr.RankFlops)) / lr.ModelSolveMax / 1e6
	}
	return nil
}

// RatePerProc returns the modeled sustained flop rate per simulated
// processor (flops/sec).
func (lr *LinearRun) RatePerProc() float64 {
	if lr.ModelSolveMax == 0 {
		return 0
	}
	return float64(perf.Sum(lr.RankFlops)) / lr.ModelSolveMax / float64(lr.Spec.Ranks)
}

// LoadBalance returns the flop balance across ranks.
func (lr *LinearRun) LoadBalance() float64 { return perf.LoadBalance(lr.RankFlops) }

// assemblyWorkers picks the element-integration concurrency for the
// experiment harness (the paper's FEAP phase is per-processor too).
func assemblyWorkers() int {
	w := runtime.NumCPU()
	if w > 8 {
		w = 8
	}
	if w < 1 {
		w = 1
	}
	return w
}
