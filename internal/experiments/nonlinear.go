package experiments

import (
	"fmt"
	"io"
	"strings"

	"prometheus/internal/core"
	"prometheus/internal/fem"
	"prometheus/internal/krylov"
	"prometheus/internal/material"
	"prometheus/internal/multigrid"
	"prometheus/internal/newton"
	"prometheus/internal/perf"
	"prometheus/internal/problems"
	"prometheus/internal/sparse"
)

// ScaledYieldStress returns the yield stress that keeps the reduced-layer
// geometry in the same shell-bending yield regime as the paper's 17-layer
// geometry. Thin-shell theory suggests bending stresses scale like (R/t)²,
// but the reduced geometry's shells are thick enough to act as 3D solids,
// where the measured amplification scales closer to linearly in the
// thickness ratio; the linear rule is calibrated so the 5-layer series
// reproduces the paper's Figure 13 shape (plastic fraction growing over
// the ten-step schedule) and Newton totals (~62 iterations vs the paper's
// 62-70). For the paper's own layer count this returns the Table 1 value,
// 1e-3.
func ScaledYieldStress(cfg problems.SpheresConfig) float64 {
	tPaper := (problems.SphereROut - problems.SphereRIn) / float64(problems.NumLayers)
	t := (problems.SphereROut - problems.SphereRIn) / float64(cfg.Layers)
	return 1e-3 * tPaper / t
}

// NonlinearRun records one size of the Figure 13 study.
type NonlinearRun struct {
	Spec  SizeSpec
	Dof   int
	Stats *newton.Stats
}

// RunNonlinear executes the full nonlinear crush for one size: steps load
// steps of the displacement schedule with the paper's Newton strategy.
func RunNonlinear(spec SizeSpec, steps int) (*NonlinearRun, error) {
	s := problems.NewSpheresConfig(spec.Cfg)
	// Keep the yield regime of the paper's shell thickness (see
	// ScaledYieldStress); for 17-layer runs this is exactly Table 1.
	s.Models[material.MatHard] = material.J2Plasticity{
		E: 1, Nu: 0.3, SigmaY: ScaledYieldStress(spec.Cfg), H: 0.002,
	}
	p := fem.NewProblem(s.Mesh, s.Models, true)
	p.Workers = assemblyWorkers()
	h, err := core.Coarsen(s.Mesh, core.Options{})
	if err != nil {
		return nil, err
	}
	zero := fem.NewConstraints()
	for d := range s.Cons.Fixed {
		zero.FixDof(d, 0)
	}
	dm := zero.NewDofMap(s.Mesh.NumDOF())
	var rs []*sparse.CSR
	for l := 1; l < h.NumLevels(); l++ {
		r := h.Grids[l].R
		if l == 1 {
			r = multigrid.CompressCols(r, dm.Full2Red, dm.NumFree())
		}
		rs = append(rs, r)
	}
	factory := func(k sparse.Operator) (krylov.Preconditioner, error) {
		return multigrid.New(k, rs, multigrid.Options{})
	}
	_, stats, err := newton.Solve(p, s.Cons, newton.Config{
		Steps: steps, MaxNewton: 30, MaxPCG: 2000,
	}, factory, material.MatHard)
	if err != nil {
		return nil, err
	}
	return &NonlinearRun{Spec: spec, Dof: s.Mesh.NumDOF(), Stats: stats}, nil
}

// Fig13 runs the nonlinear study across sizes and prints both panels:
// the percentage of hard-shell integration points in the plastic state per
// load step (left), and the solver iterations per Newton solve stacked per
// step (right), plus the Table 2 nonlinear totals.
func Fig13(w io.Writer, maxK, steps int) error {
	var runs []*NonlinearRun
	for _, spec := range Series(maxK) {
		r, err := RunNonlinear(spec, steps)
		if err != nil {
			return fmt.Errorf("fig13 %s: %w", spec.Name, err)
		}
		runs = append(runs, r)
	}

	// Left panel: plastic percentage per step.
	headers := []string{"dof \\ step"}
	for s := 1; s <= steps; s++ {
		headers = append(headers, fmt.Sprintf("%d", s))
	}
	rows := [][]string{}
	for _, r := range runs {
		row := []string{fmt.Sprintf("%d", r.Dof)}
		for _, ss := range r.Stats.Steps {
			row = append(row, fmt.Sprintf("%.1f%%", 100*ss.PlasticFrac))
		}
		rows = append(rows, row)
	}
	fmt.Fprintln(w, "Figure 13 (left) — % of hard-shell integration points in plastic state per load step (paper: grows to >24%)")
	fmt.Fprint(w, perf.Table(headers, rows))

	// Right panel: PCG iterations per Newton solve, stacked per step.
	fmt.Fprintln(w, "\nFigure 13 (right) — PCG iterations per Newton solve, per load step")
	rows = rows[:0]
	for _, r := range runs {
		for si, ss := range r.Stats.Steps {
			var parts []string
			for _, its := range ss.PCGIters {
				parts = append(parts, fmt.Sprintf("%d", its))
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", r.Dof),
				fmt.Sprintf("%d", si+1),
				fmt.Sprintf("%d", ss.NewtonIters),
				strings.Join(parts, "+"),
				fmt.Sprintf("%d", sum(ss.PCGIters)),
			})
		}
	}
	fmt.Fprint(w, perf.Table([]string{"dof", "step", "newton its", "PCG per solve", "PCG total"}, rows))

	// Table 2 nonlinear totals.
	fmt.Fprintln(w, "\nTable 2 (nonlinear totals) — paper: total PCG ~3000-4100, Newton ~62-70, roughly constant across sizes")
	rows = rows[:0]
	for _, r := range runs {
		avg := 0.0
		if r.Stats.TotalNewton > 0 {
			avg = float64(r.Stats.TotalPCG) / float64(r.Stats.TotalNewton)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Dof),
			fmt.Sprintf("%d", r.Stats.FirstSolveIters),
			fmt.Sprintf("%d", r.Stats.TotalPCG),
			fmt.Sprintf("%d", r.Stats.TotalNewton),
			fmt.Sprintf("%.1f", avg),
			fmt.Sprintf("%.1f%%", 100*r.Stats.Steps[len(r.Stats.Steps)-1].PlasticFrac),
		})
	}
	fmt.Fprint(w, perf.Table([]string{
		"equations", "1st solve PCG", "total PCG", "total Newton", "avg PCG/solve", "final plastic"}, rows))
	return nil
}

func sum(v []int) int {
	s := 0
	for _, x := range v {
		s += x
	}
	return s
}
