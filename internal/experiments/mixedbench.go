package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"testing"

	"prometheus/internal/core"
	"prometheus/internal/krylov"
	"prometheus/internal/multigrid"
	"prometheus/internal/problems"
	"prometheus/internal/sparse"
)

// MixedBenchEntry is one {storage, precision} configuration of the
// mixed-precision study: the coarse-level storage footprint, the FPCG
// iteration count to 1e-8, the drift against the all-f64 solution with
// the same storage, and the kernel timings where the narrowed operators
// actually run (the V-cycle and the level-1 SpMV).
type MixedBenchEntry struct {
	Config            string  `json:"config"`
	Storage           string  `json:"storage"`
	Precision         string  `json:"precision"`
	CoarseBytes       int64   `json:"coarse_bytes"`
	CoarseBytesPerDof float64 `json:"coarse_bytes_per_dof"`
	Iterations        int     `json:"fpcg_iterations"`
	MaxDiffVsF64      float64 `json:"max_diff_vs_f64"`
	VCycleNsPerOp     float64 `json:"vcycle_ns_per_op"`
	VCycleAllocs      int64   `json:"vcycle_allocs_per_op"`
	CoarseSpMVMflops  float64 `json:"coarse_spmv_mflops"`
}

// MixedBenchReport is the machine-readable result of the mixed-precision
// coarse-level study (schema documented in EXPERIMENTS.md). The ratio and
// delta fields are the acceptance metrics: narrowing must cut the
// coarse-level bytes/dof by at least 1.3x per storage while costing at
// most two extra FPCG iterations, and requesting f64 explicitly must stay
// bitwise identical to the default configuration.
type MixedBenchReport struct {
	Problem             string            `json:"problem"`
	Dof                 int               `json:"dof"`
	NNZ                 int               `json:"nnz"`
	Levels              int               `json:"levels"`
	CoarseDof           int               `json:"coarse_dof"`
	BytesPerDofRatioCSR float64           `json:"bytes_per_dof_ratio_csr"`
	BytesPerDofRatioBSR float64           `json:"bytes_per_dof_ratio_bsr"`
	IterDeltaCSR        int               `json:"iter_delta_csr"`
	IterDeltaBSR        int               `json:"iter_delta_bsr"`
	F64Bitwise          bool              `json:"f64_bitwise_identical"`
	Entries             []MixedBenchEntry `json:"entries"`
}

// MixedBench builds the spheres multigrid hierarchy in {CSR, BSR} x
// {f64, mixed} and measures what the mixed-precision mode trades: the
// coarse-level operators shrink (bytes/dof) while the f64 fine level, the
// f64 residual/correction transfers and FPCG's flexible outer iteration
// keep the attainable accuracy — so the iteration count may grow only
// within a small budget. MinCoarse 10 forces at least three levels so an
// intermediate smoother actually sweeps narrowed storage; with only two
// levels the coarsest f64 direct factor would hide the narrowing.
func MixedBench() (*MixedBenchReport, error) {
	ks, err := newKernelSystem(problems.SpheresConfig{Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2})
	if err != nil {
		return nil, err
	}
	kred := ks.Kred
	h, err := core.Coarsen(ks.S.Mesh, core.Options{MinCoarse: 10})
	if err != nil {
		return nil, err
	}
	var rs []*sparse.CSR
	for l := 1; l < h.NumLevels(); l++ {
		rr := h.Grids[l].R
		if l == 1 {
			rr = multigrid.CompressCols(rr, ks.DM.Full2Red, ks.DM.NumFree())
		}
		rs = append(rs, rr)
	}

	rep := &MixedBenchReport{
		Problem: ks.Problem(),
		Dof:     kred.NRows,
		NNZ:     kred.NNZ(),
	}
	n := kred.NRows

	type config struct {
		storage multigrid.StorageKind
		sname   string
		prec    multigrid.PrecisionKind
		pname   string
	}
	configs := []config{
		{multigrid.StorageCSR, "csr", multigrid.PrecisionF64, "f64"},
		{multigrid.StorageCSR, "csr", multigrid.PrecisionMixedF32, "mixed"},
		{multigrid.StorageBSR, "bsr", multigrid.PrecisionF64, "f64"},
		{multigrid.StorageBSR, "bsr", multigrid.PrecisionMixedF32, "mixed"},
	}
	refX := map[string][]float64{}
	refIts := map[string]int{}
	bytesPerDof := map[string]float64{}
	its := map[string]int{}
	for _, c := range configs {
		mg, err := multigrid.New(kred, rs, multigrid.Options{
			Cycle:           multigrid.VCycle,
			Storage:         c.storage,
			CoarsePrecision: c.prec,
		})
		if err != nil {
			return nil, err
		}
		if len(mg.Levels) < 2 {
			return nil, fmt.Errorf("experiments: mixedbench needs a multilevel hierarchy, got %d levels", len(mg.Levels))
		}
		rep.Levels = len(mg.Levels)
		var coarseBytes int64
		coarseDof := 0
		for l := 1; l < len(mg.Levels); l++ {
			coarseBytes += sparse.StorageBytes(mg.Levels[l].A)
			coarseDof += mg.Levels[l].A.Rows()
		}
		rep.CoarseDof = coarseDof

		x := make([]float64, n)
		res := krylov.FPCG(kred, ks.Rred, x, mg, 1e-8, 300)
		if !res.Converged {
			return nil, fmt.Errorf("experiments: mixedbench %s_%s FPCG did not converge in %d iterations", c.sname, c.pname, res.Iterations)
		}
		maxDiff := 0.0
		if c.pname == "f64" {
			refX[c.sname] = x
			refIts[c.sname] = res.Iterations
		} else {
			for i, v := range refX[c.sname] {
				if d := math.Abs(v - x[i]); d > maxDiff {
					maxDiff = d
				}
			}
		}

		z := make([]float64, n)
		vres := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mg.Apply(ks.Rred, z)
			}
		})
		op := mg.Levels[1].A
		cx := make([]float64, op.Cols())
		cy := make([]float64, op.Rows())
		for i := range cx {
			cx[i] = float64(i%7) - 3
		}
		sres := testing.Benchmark(func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op.MulVec(cx, cy)
			}
		})

		key := c.sname + "_" + c.pname
		e := MixedBenchEntry{
			Config:            key,
			Storage:           c.sname,
			Precision:         c.pname,
			CoarseBytes:       coarseBytes,
			CoarseBytesPerDof: float64(coarseBytes) / float64(coarseDof),
			Iterations:        res.Iterations,
			MaxDiffVsF64:      maxDiff,
			VCycleNsPerOp:     float64(vres.NsPerOp()),
			VCycleAllocs:      vres.AllocsPerOp(),
		}
		if sres.NsPerOp() > 0 {
			flops := 2 * float64(op.NNZ())
			e.CoarseSpMVMflops = flops / float64(sres.NsPerOp()) * 1e9 / 1e6
		}
		rep.Entries = append(rep.Entries, e)
		bytesPerDof[key] = e.CoarseBytesPerDof
		its[key] = res.Iterations
	}

	rep.BytesPerDofRatioCSR = bytesPerDof["csr_f64"] / bytesPerDof["csr_mixed"]
	rep.BytesPerDofRatioBSR = bytesPerDof["bsr_f64"] / bytesPerDof["bsr_mixed"]
	rep.IterDeltaCSR = its["csr_mixed"] - its["csr_f64"]
	rep.IterDeltaBSR = its["bsr_mixed"] - its["bsr_f64"]

	// Determinism: requesting PrecisionF64 explicitly is the same code
	// path as the default zero-value Options — every FPCG iterate must be
	// bitwise identical.
	mgDefault, err := multigrid.New(kred, rs, multigrid.Options{Cycle: multigrid.VCycle, Storage: multigrid.StorageCSR})
	if err != nil {
		return nil, err
	}
	xd := make([]float64, n)
	rd := krylov.FPCG(kred, ks.Rred, xd, mgDefault, 1e-8, 300)
	rep.F64Bitwise = rd.Iterations == refIts["csr"]
	for i, v := range refX["csr"] {
		if math.Float64bits(v) != math.Float64bits(xd[i]) {
			rep.F64Bitwise = false
			break
		}
	}
	return rep, nil
}

// WriteMixedBenchJSON writes the report as indented JSON.
func WriteMixedBenchJSON(w io.Writer, rep *MixedBenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// MixedBenchTable renders the report as the human-readable study.
func MixedBenchTable(w io.Writer, rep *MixedBenchReport) {
	fmt.Fprintf(w, "Mixed-precision coarse-level study (%s, %d dof, %d nnz, %d levels, %d coarse dof)\n",
		rep.Problem, rep.Dof, rep.NNZ, rep.Levels, rep.CoarseDof)
	fmt.Fprintf(w, "%-12s %14s %6s %12s %12s %14s %10s\n",
		"config", "coarse B/dof", "its", "max|dx|", "vcycle ns", "spmv Mflop/s", "allocs/op")
	for _, e := range rep.Entries {
		fmt.Fprintf(w, "%-12s %14.1f %6d %12.3g %12.0f %14.0f %10d\n",
			e.Config, e.CoarseBytesPerDof, e.Iterations, e.MaxDiffVsF64,
			e.VCycleNsPerOp, e.CoarseSpMVMflops, e.VCycleAllocs)
	}
	fmt.Fprintf(w, "coarse bytes/dof ratio f64/mixed: csr %.2fx, bsr %.2fx\n",
		rep.BytesPerDofRatioCSR, rep.BytesPerDofRatioBSR)
	fmt.Fprintf(w, "FPCG iteration delta mixed-f64: csr %+d, bsr %+d\n",
		rep.IterDeltaCSR, rep.IterDeltaBSR)
	fmt.Fprintf(w, "explicit f64 config bitwise identical to default: %v\n", rep.F64Bitwise)
}
