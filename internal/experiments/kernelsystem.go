package experiments

import (
	"fmt"

	"prometheus/internal/fem"
	"prometheus/internal/problems"
	"prometheus/internal/sparse"
)

// kernelSystem is a reduced spheres tangent system held in both storages:
// the shared fixture of the kernel studies (blockbench, parbench). The
// octant's symmetry planes constrain single components, which breaks node
// alignment; the kernel studies clamp whole vertices instead — same
// operator size class, and the reduced matrix keeps its 3x3 node blocks
// intact so both storages bench the same system.
type kernelSystem struct {
	Cfg  problems.SpheresConfig
	S    *problems.Spheres
	DM   *fem.DofMap
	Kred *sparse.CSR
	KB   *sparse.BSR
	Rred []float64
}

func newKernelSystem(cfg problems.SpheresConfig) (*kernelSystem, error) {
	s := problems.NewSpheresConfig(cfg)
	p := fem.NewProblem(s.Mesh, s.Models, true)
	u := make([]float64, s.Mesh.NumDOF())
	s.Cons.Scaled(0.1).Apply(u)
	k, fint, err := p.AssembleTangent(u)
	if err != nil {
		return nil, err
	}
	zero := fem.NewConstraints()
	for d := range s.Cons.Fixed {
		zero.FixVert(d/3, 0, 0, 0)
	}
	dm := zero.NewDofMap(s.Mesh.NumDOF())
	r := make([]float64, len(fint))
	for i := range r {
		r[i] = -fint[i]
	}
	kred, rred := zero.Reduce(k, r, dm)
	if !dm.NodeAligned(3) {
		return nil, fmt.Errorf("experiments: bench constraints are not node-aligned")
	}
	kb, err := sparse.FromCSR(kred, 3)
	if err != nil {
		return nil, err
	}
	return &kernelSystem{Cfg: cfg, S: s, DM: dm, Kred: kred, KB: kb, Rred: rred}, nil
}

// Problem renders the configuration for reports.
func (ks *kernelSystem) Problem() string {
	return fmt.Sprintf("spheres L=%d k=%d", ks.Cfg.Layers, ks.Cfg.ElemsPerLayer)
}
