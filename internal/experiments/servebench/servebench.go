// Package servebench measures the promserve solver-as-a-service layer
// against an in-process instance: cold-vs-warm request cost (what the
// hierarchy cache buys), closed-loop latency/throughput under a client
// sweep, open-loop backpressure behaviour under an arrival sweep, and —
// the correctness anchor — that served solutions stay bitwise identical
// to direct in-process solver runs, cold and warm alike. It lives apart
// from internal/experiments so the root package's benchmarks can import
// the experiment suite without pulling in internal/serve (which imports
// the root package).
package servebench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"prometheus/internal/serve"
)

// Latency is a latency distribution over one request class.
type Latency struct {
	P50Ns  int64 `json:"p50_ns"`
	P95Ns  int64 `json:"p95_ns"`
	P99Ns  int64 `json:"p99_ns"`
	MeanNs int64 `json:"mean_ns"`
	MaxNs  int64 `json:"max_ns"`
}

// ClosedPoint is one closed-loop measurement: a fixed client count,
// each client firing its next request as soon as the previous returns.
type ClosedPoint struct {
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	WallNs   int64   `json:"wall_ns"`
	RPS      float64 `json:"rps"`
	Latency  Latency `json:"latency"`
}

// OpenPoint is one open-loop measurement: requests arrive on a
// fixed interval regardless of completions, without the wait flag, so a
// saturated service sheds load as 503s instead of queueing.
type OpenPoint struct {
	IntervalNs int64   `json:"interval_ns"`
	Requests   int     `json:"requests"`
	Accepted   int     `json:"accepted"`
	Rejected   int     `json:"rejected"`
	Latency    Latency `json:"latency"`
}

// Report is the servebench study document (BENCH_PR8.json).
type Report struct {
	Problem string `json:"problem"`
	Size    int    `json:"size"`
	NumDOF  int    `json:"num_dof"`
	Levels  int    `json:"levels"`
	// ColdNs is the end-to-end first-request latency (includes the
	// hierarchy build); ColdSetupNs the setup share the server reported.
	ColdNs      int64 `json:"cold_ns"`
	ColdSetupNs int64 `json:"cold_setup_ns"`
	// Warm is the single-client warm-request latency distribution:
	// every one of these requests hit the hierarchy cache.
	Warm Latency `json:"warm"`
	// CacheSpeedup is ColdNs over the warm median — the factor the
	// fingerprint-keyed cache saves a repeat client.
	CacheSpeedup float64 `json:"cache_speedup"`
	// BitwiseIdentical is true iff every served solution hash (cold and
	// warm, sequential and concurrent) equals the direct solver run's.
	BitwiseIdentical bool          `json:"bitwise_identical"`
	Closed           []ClosedPoint `json:"closed_loop"`
	Open             []OpenPoint   `json:"open_loop"`
}

// latencyStats summarizes a sample of request latencies.
func latencyStats(ns []int64) Latency {
	if len(ns) == 0 {
		return Latency{}
	}
	s := append([]int64(nil), ns...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pct := func(p float64) int64 {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	var sum int64
	for _, v := range s {
		sum += v
	}
	return Latency{
		P50Ns:  pct(0.50),
		P95Ns:  pct(0.95),
		P99Ns:  pct(0.99),
		MeanNs: sum / int64(len(s)),
		MaxNs:  s[len(s)-1],
	}
}

// postSolve fires one solve request and decodes the response. The int
// is the HTTP status; on non-200 the response is zero-valued.
func postSolve(url string, req serve.SolveRequest) (serve.SolveResponse, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return serve.SolveResponse{}, 0, err
	}
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.SolveResponse{}, 0, err
	}
	data, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return serve.SolveResponse{}, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return serve.SolveResponse{}, resp.StatusCode, nil
	}
	var out serve.SolveResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return serve.SolveResponse{}, resp.StatusCode, err
	}
	return out, resp.StatusCode, nil
}

// Run runs the solver-as-a-service study against an in-process
// promserve instance.
func Run() (*Report, error) {
	spec := serve.Spec{Problem: "cube", Size: 1}
	const (
		rtol     = 1e-4
		maxIters = 1000
		cycle    = "fmg"
		warmN    = 12
	)

	// Ground truth: the direct, in-process solver run.
	direct, _, err := serve.DirectSolve(spec, 1, rtol, maxIters, cycle, "", "")
	if err != nil {
		return nil, err
	}
	directHash := serve.SolutionHash(direct)

	svc := serve.New(serve.Config{MaxConcurrent: 4})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	rep := &Report{Problem: spec.Problem, Size: spec.Size, BitwiseIdentical: true}
	req := serve.SolveRequest{Spec: spec, Wait: true}

	check := func(r serve.SolveResponse, status int, err error) error {
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("servebench: solve status %d", status)
		}
		if r.SolutionHash != directHash {
			rep.BitwiseIdentical = false
		}
		return nil
	}

	// Cold request: pays coarsening + assembly + Galerkin setup.
	t0 := time.Now()
	r, status, err := postSolve(ts.URL, req)
	if cerr := check(r, status, err); cerr != nil {
		return nil, cerr
	}
	rep.ColdNs = time.Since(t0).Nanoseconds()
	rep.ColdSetupNs = r.SetupNs
	rep.NumDOF = r.NumDOF
	rep.Levels = r.Levels
	if r.CacheHit {
		return nil, fmt.Errorf("servebench: first request reported a cache hit")
	}

	// Warm single-client distribution: all hits.
	var warm []int64
	for i := 0; i < warmN; i++ {
		t := time.Now()
		r, status, err := postSolve(ts.URL, req)
		if cerr := check(r, status, err); cerr != nil {
			return nil, cerr
		}
		if !r.CacheHit {
			return nil, fmt.Errorf("servebench: warm request %d missed the cache", i)
		}
		warm = append(warm, time.Since(t).Nanoseconds())
	}
	rep.Warm = latencyStats(warm)
	if rep.Warm.P50Ns > 0 {
		rep.CacheSpeedup = float64(rep.ColdNs) / float64(rep.Warm.P50Ns)
	}

	// Closed loop: fixed client counts, think time zero.
	for _, clients := range []int{1, 2, 4} {
		const perClient = 4
		lat := make([][]int64, clients)
		var wg sync.WaitGroup
		errs := make([]error, clients)
		wall0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					t := time.Now()
					r, status, err := postSolve(ts.URL, req)
					if cerr := check(r, status, err); cerr != nil {
						errs[c] = cerr
						return
					}
					lat[c] = append(lat[c], time.Since(t).Nanoseconds())
				}
			}(c)
		}
		wg.Wait()
		wallNs := time.Since(wall0).Nanoseconds()
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		var all []int64
		for _, l := range lat {
			all = append(all, l...)
		}
		rep.Closed = append(rep.Closed, ClosedPoint{
			Clients:  clients,
			Requests: len(all),
			WallNs:   wallNs,
			RPS:      float64(len(all)) / (float64(wallNs) / 1e9),
			Latency:  latencyStats(all),
		})
	}

	// Open loop: fixed arrival intervals, no wait flag — saturation
	// surfaces as 503 backpressure, never as queue growth.
	openReq := req
	openReq.Wait = false
	for _, interval := range []int64{rep.Warm.P50Ns, rep.Warm.P50Ns / 8} {
		if interval <= 0 {
			interval = 1
		}
		const n = 16
		var wg sync.WaitGroup
		lat := make([]int64, n)
		codes := make([]int, n)
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int, interval int64) {
				defer wg.Done()
				time.Sleep(time.Duration(int64(i) * interval))
				t := time.Now()
				r, status, err := postSolve(ts.URL, openReq)
				if err != nil {
					errs[i] = err
					return
				}
				codes[i] = status
				if status == http.StatusOK {
					if r.SolutionHash != directHash {
						rep.BitwiseIdentical = false
					}
					lat[i] = time.Since(t).Nanoseconds()
				}
			}(i, interval)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		point := OpenPoint{IntervalNs: interval, Requests: n}
		var accepted []int64
		for i, code := range codes {
			switch code {
			case http.StatusOK:
				point.Accepted++
				accepted = append(accepted, lat[i])
			case http.StatusServiceUnavailable:
				point.Rejected++
			default:
				return nil, fmt.Errorf("servebench: open-loop request got status %d", code)
			}
		}
		point.Latency = latencyStats(accepted)
		rep.Open = append(rep.Open, point)
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Table renders the report as the human-readable study.
func Table(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "Solver-as-a-service study (%s size %d, %d dof, %d levels)\n",
		rep.Problem, rep.Size, rep.NumDOF, rep.Levels)
	fmt.Fprintf(w, "cold request %.2f ms (setup %.2f ms), warm p50 %.2f ms -> cache speedup %.1fx\n",
		float64(rep.ColdNs)/1e6, float64(rep.ColdSetupNs)/1e6, float64(rep.Warm.P50Ns)/1e6, rep.CacheSpeedup)
	fmt.Fprintf(w, "bitwise identical to direct solve: %v\n", rep.BitwiseIdentical)
	fmt.Fprintf(w, "%-8s %9s %10s %10s %10s %10s %8s\n", "clients", "requests", "p50 (ms)", "p95 (ms)", "p99 (ms)", "max (ms)", "req/s")
	for _, p := range rep.Closed {
		fmt.Fprintf(w, "%-8d %9d %10.2f %10.2f %10.2f %10.2f %8.1f\n",
			p.Clients, p.Requests, float64(p.Latency.P50Ns)/1e6, float64(p.Latency.P95Ns)/1e6,
			float64(p.Latency.P99Ns)/1e6, float64(p.Latency.MaxNs)/1e6, p.RPS)
	}
	fmt.Fprintf(w, "%-14s %9s %9s %9s %10s\n", "interval (ms)", "requests", "accepted", "rejected", "p95 (ms)")
	for _, p := range rep.Open {
		fmt.Fprintf(w, "%-14.2f %9d %9d %9d %10.2f\n",
			float64(p.IntervalNs)/1e6, p.Requests, p.Accepted, p.Rejected, float64(p.Latency.P95Ns)/1e6)
	}
}
