// Obs-overhead study: what request-scoped observability costs on the
// warm serve path, and whether its three contracts hold end-to-end —
// bitwise-identical numerics with recording on, per-request attribution
// summing exactly to the global profile, and a /metrics exposition that
// parses as Prometheus text format.
package servebench

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"time"

	"prometheus/internal/obs"
	"prometheus/internal/serve"
)

// ObsReport is the obs-overhead study document (BENCH_PR10.json).
type ObsReport struct {
	Problem string `json:"problem"`
	Size    int    `json:"size"`
	NumDOF  int    `json:"num_dof"`
	// Batches and RequestsPerBatch describe the alternating off/on
	// measurement: each batch runs RequestsPerBatch warm solves with
	// recording off, then the same number with recording on.
	Batches          int `json:"batches"`
	RequestsPerBatch int `json:"requests_per_batch"`
	// OffMeanNsBest and OnMeanNsBest are the best (minimum) per-batch
	// mean warm latencies — min-of-means discards scheduler noise that
	// a grand mean would fold into the ratio.
	OffMeanNsBest int64 `json:"off_mean_ns_best"`
	OnMeanNsBest  int64 `json:"on_mean_ns_best"`
	// OverheadRatio is OnMeanNsBest / OffMeanNsBest; the CI gate holds
	// it under 1.05 (<5% overhead with full tracing on).
	OverheadRatio float64 `json:"overhead_ratio"`
	// BitwiseIdentical is true iff every solution hash — obs off and
	// obs on alike — equals the direct in-process solver run's.
	BitwiseIdentical bool `json:"bitwise_identical"`
	// TaskAttributionConsistent is true iff two concurrent solves'
	// per-request flop attributions are each positive and sum exactly
	// to the global profile's totals over the task-credited events.
	TaskAttributionConsistent bool `json:"task_attribution_consistent"`
	// TaskFlopsA/B are those two attributions, for the record.
	TaskFlopsA int64 `json:"task_flops_a"`
	TaskFlopsB int64 `json:"task_flops_b"`
	// MetricsExpositionValid is true iff every non-comment /metrics
	// line matches the Prometheus text sample grammar.
	MetricsExpositionValid bool `json:"metrics_exposition_valid"`
	// MetricsSeries counts the exposed sample lines.
	MetricsSeries int `json:"metrics_series"`
	// TraceEvents counts the events in one request's Chrome-trace
	// export from /v1/sessions/{id}/trace.
	TraceEvents int `json:"trace_events"`
}

// obsSampleLine matches one Prometheus text-format sample.
var obsSampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)

// obsTaskEvent mirrors the task-crediting span sites (see the serve
// TestTaskAttribution): krylov solve, V-cycle apply, smoother sweeps.
func obsTaskEvent(name string) bool {
	return name == "krylov.fpcg" || name == "mg.apply" || strings.HasPrefix(name, "smooth.")
}

// RunObs runs the obs-overhead study against an in-process promserve
// instance. It toggles the global obs recorder; the caller should not
// depend on the recorder state afterwards (it is left disabled).
func RunObs() (*ObsReport, error) {
	// Size 2 keeps the fixed per-span recording cost small relative to
	// the numerical work, which is what a production request looks like;
	// size 1 solves are so short that tracing density dominates.
	spec := serve.Spec{Problem: "cube", Size: 2}
	const (
		batches  = 6
		perBatch = 12
	)

	direct, _, err := serve.DirectSolve(spec, 1, 1e-4, 1000, "fmg", "", "")
	if err != nil {
		return nil, err
	}
	directHash := serve.SolutionHash(direct)

	obs.Disable()
	// The study times the serve path, not stderr: drop request logs.
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	svc := serve.New(serve.Config{MaxConcurrent: 4, Log: quiet})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	rep := &ObsReport{
		Problem: spec.Problem, Size: spec.Size,
		Batches: batches, RequestsPerBatch: perBatch,
		BitwiseIdentical: true,
	}
	req := serve.SolveRequest{Spec: spec, Wait: true}

	solve := func() (serve.SolveResponse, error) {
		r, status, err := postSolve(ts.URL, req)
		if err != nil {
			return r, err
		}
		if status != http.StatusOK {
			return r, fmt.Errorf("servebench: obs study solve status %d", status)
		}
		if r.SolutionHash != directHash {
			rep.BitwiseIdentical = false
		}
		return r, nil
	}

	// Prewarm: build the cache entry and its pooled MG before anything
	// is timed or attributed.
	cold, err := solve()
	if err != nil {
		return nil, err
	}
	rep.NumDOF = cold.NumDOF

	// Alternating off/on batches; keep the best per-mode batch mean.
	batchMean := func() (int64, error) {
		var total int64
		for i := 0; i < perBatch; i++ {
			t0 := time.Now()
			if _, err := solve(); err != nil {
				return 0, err
			}
			total += time.Since(t0).Nanoseconds()
		}
		return total / perBatch, nil
	}
	for b := 0; b < batches; b++ {
		obs.Disable()
		off, err := batchMean()
		if err != nil {
			return nil, err
		}
		if rep.OffMeanNsBest == 0 || off < rep.OffMeanNsBest {
			rep.OffMeanNsBest = off
		}
		obs.EnableWith(obs.Config{RingCap: 1 << 15})
		on, err := batchMean()
		if err != nil {
			return nil, err
		}
		if rep.OnMeanNsBest == 0 || on < rep.OnMeanNsBest {
			rep.OnMeanNsBest = on
		}
	}
	if rep.OffMeanNsBest > 0 {
		rep.OverheadRatio = float64(rep.OnMeanNsBest) / float64(rep.OffMeanNsBest)
	}

	// Attribution identity: two concurrent solves in a fresh recording
	// window; their task flops must be positive and sum to the global
	// task-event flops (nothing else runs in the window).
	obs.EnableWith(obs.Config{RingCap: 1 << 15})
	var wg sync.WaitGroup
	resps := make([]serve.SolveResponse, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = solve()
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	snap := obs.Snapshot()
	var globalFlops int64
	for _, e := range snap.Events {
		if obsTaskEvent(e.Name) {
			globalFlops += e.Totals().Flops
		}
	}
	rep.TaskFlopsA = resps[0].TaskFlops
	rep.TaskFlopsB = resps[1].TaskFlops
	rep.TaskAttributionConsistent = rep.TaskFlopsA > 0 && rep.TaskFlopsB > 0 &&
		rep.TaskFlopsA+rep.TaskFlopsB == globalFlops

	// Exposition validity: every /metrics sample line must parse.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(mresp.Body)
	if cerr := mresp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	rep.MetricsExpositionValid = true
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !obsSampleLine.MatchString(line) {
			rep.MetricsExpositionValid = false
			break
		}
		rep.MetricsSeries++
	}

	// Trace export: the last concurrent solve's session must serve a
	// non-empty Chrome trace.
	tresp, err := http.Get(fmt.Sprintf("%s/v1/sessions/%d/trace", ts.URL, resps[1].Session))
	if err != nil {
		return nil, err
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	derr := json.NewDecoder(tresp.Body).Decode(&doc)
	if cerr := tresp.Body.Close(); derr == nil {
		derr = cerr
	}
	if derr != nil {
		return nil, derr
	}
	rep.TraceEvents = len(doc.TraceEvents)

	obs.Disable()
	return rep, nil
}

// WriteObsJSON writes the obs study report as indented JSON.
func WriteObsJSON(w io.Writer, rep *ObsReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ObsTable renders the obs study as the human-readable table.
func ObsTable(w io.Writer, rep *ObsReport) {
	fmt.Fprintf(w, "Request-scoped observability study (%s size %d, %d dof)\n",
		rep.Problem, rep.Size, rep.NumDOF)
	fmt.Fprintf(w, "warm solve, obs off %.3f ms vs obs on %.3f ms -> overhead %.2f%% (best of %d batches x %d requests)\n",
		float64(rep.OffMeanNsBest)/1e6, float64(rep.OnMeanNsBest)/1e6,
		(rep.OverheadRatio-1)*100, rep.Batches, rep.RequestsPerBatch)
	fmt.Fprintf(w, "bitwise identical with recording on: %v\n", rep.BitwiseIdentical)
	fmt.Fprintf(w, "per-request attribution sums to global profile: %v (A=%d, B=%d flops)\n",
		rep.TaskAttributionConsistent, rep.TaskFlopsA, rep.TaskFlopsB)
	fmt.Fprintf(w, "/metrics: %d series, exposition valid: %v\n", rep.MetricsSeries, rep.MetricsExpositionValid)
	fmt.Fprintf(w, "per-request trace export: %d events\n", rep.TraceEvents)
}
