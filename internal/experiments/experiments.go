package experiments

import (
	"fmt"
	"io"
	"time"

	"prometheus/internal/core"
	"prometheus/internal/material"
	"prometheus/internal/multigrid"
	"prometheus/internal/perf"
	"prometheus/internal/problems"
)

// fmtDur renders a duration in milliseconds.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

// RunSeries executes the scaled linear study once and reuses it across the
// Figure 10/11/12 and Table 2 reports.
func RunSeries(maxK int, mgOpts multigrid.Options) ([]*LinearRun, error) {
	machine := perf.PaperIBM()
	var runs []*LinearRun
	for _, spec := range Series(maxK) {
		r, err := RunLinear(spec, machine, mgOpts)
		if err != nil {
			return nil, fmt.Errorf("series %s: %w", spec.Name, err)
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// Table1 verifies the Table 1 material constitution with uniaxial and shear
// probes of both materials.
func Table1(w io.Writer) error {
	db := material.Database()
	soft := db[material.MatSoft]
	hard := db[material.MatHard]
	rows := [][]string{}
	probe := func(name string, m material.Model, eps material.Voigt) {
		sig, _, st := m.Update(material.State{}, eps)
		rows = append(rows, []string{
			name, m.Name(),
			fmt.Sprintf("%.3g", eps[0]), fmt.Sprintf("%.3g", eps[3]),
			fmt.Sprintf("%.4g", sig[0]), fmt.Sprintf("%.4g", sig[3]),
			fmt.Sprintf("%v", st.Plastic),
		})
	}
	probe("soft uniaxial", soft, material.Voigt{0.01, -0.0049, -0.0049})
	probe("soft shear", soft, material.Voigt{0, 0, 0, 0.02})
	probe("hard elastic", hard, material.Voigt{0.0005, -0.00015, -0.00015})
	probe("hard yielding", hard, material.Voigt{0, 0, 0, 0.01})
	fmt.Fprintln(w, "Table 1 — material constitution probes (E_soft=1e-4 nu=0.49; E_hard=1 nu=0.3 sigma_y=1e-3 H=0.002E)")
	fmt.Fprint(w, perf.Table(
		[]string{"probe", "model", "eps_xx", "gamma_xy", "sigma_xx", "tau_xy", "plastic"}, rows))
	return nil
}

// Table2 reports the scaled iteration study: MG-preconditioned CG
// iterations of the first linear solve and the modeled aggregate Mflop
// rate, per problem size (the linear-solve half of the paper's Table 2;
// the nonlinear totals come from Fig13).
func Table2(w io.Writer, runs []*LinearRun) error {
	rows := [][]string{}
	for _, r := range runs {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Dof),
			fmt.Sprintf("%d", r.Spec.Ranks),
			fmt.Sprintf("%d", r.Iters),
			fmt.Sprintf("%d", r.Levels),
			fmt.Sprintf("%.0f", r.ModelMflops),
			fmt.Sprintf("%.2f", r.LoadBalance()),
		})
	}
	fmt.Fprintln(w, "Table 2 — scaled first linear solve (paper: 29, 27, 22, 20, 20, ... iterations; flat)")
	fmt.Fprint(w, perf.Table(
		[]string{"equations", "ranks", "MG-PCG iters (rtol=1e-4)", "levels", "model Mflop/s", "load bal"}, rows))
	return nil
}

// Fig9 reports the model-problem family: dof counts of the paper geometry
// (17 layers) and of the reduced scaling series.
func Fig9(w io.Writer) error {
	fmt.Fprintln(w, "Figure 9 — concentric spheres model problem (octant, 17 alternating layers)")
	rows := [][]string{}
	for k := 1; k <= 3; k++ {
		cfg := problems.SpheresConfig{Layers: problems.NumLayers, ElemsPerLayer: k, CoreElems: 3 * k, OuterElems: 3 * k}
		n := cfg.NumRadial()
		dof := 3 * (n + 1) * (n + 1) * (n + 1)
		rows = append(rows, []string{
			fmt.Sprintf("17 layers, k=%d", k),
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", n*n*n), fmt.Sprintf("%d", dof),
		})
	}
	paperDofs, paperProcs := problems.PaperSizes()
	for i := range paperDofs {
		if i >= 3 {
			break
		}
		rows = append(rows, []string{
			fmt.Sprintf("paper col %d", i+1), "-", "-",
			fmt.Sprintf("%d (on %d procs)", paperDofs[i], paperProcs[i]),
		})
	}
	fmt.Fprint(w, perf.Table([]string{"configuration", "n radial", "elements", "dof"}, rows))
	s := problems.NewSpheresConfig(problems.SpheresConfig{Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2})
	fmt.Fprintf(w, "reduced series base: %d elements, %d dof, hard fraction %.2f\n",
		s.Mesh.NumElems(), s.Mesh.NumDOF(), s.HardFraction())
	return nil
}

// Fig10 prints the Figure 10 phase breakdown: wall-clock component times of
// the scaled runs (left: solve phases; right: end-to-end components).
func Fig10(w io.Writer, runs []*LinearRun) error {
	rows := [][]string{}
	for _, r := range runs {
		total := r.Wall["partition"] + r.Wall["mesh setup"] + r.Wall["fine grid"] +
			r.Wall["matrix setup"] + r.Wall["solve"]
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Dof),
			fmt.Sprintf("%d", r.Spec.Ranks),
			fmtDur(r.Wall["partition"]),
			fmtDur(r.Wall["mesh setup"]),
			fmtDur(r.Wall["fine grid"]),
			fmtDur(r.Wall["matrix setup"]),
			fmtDur(r.Wall["solve"]),
			fmtDur(total),
			fmt.Sprintf("%.1f", r.ModelSolveMax*1000),
			fmt.Sprintf("%d", r.Iters),
		})
	}
	fmt.Fprintln(w, "Figure 10 — component times per scaled run (wall ms; modeled solve = cluster machine model)")
	fmt.Fprint(w, perf.Table([]string{
		"dof", "ranks", "partition(Athena)", "mesh setup(Prometheus)", "fine grid(FEAP)",
		"matrix setup(Epimetheus)", "solve(PETSc)", "end-to-end", "model solve", "iters"}, rows))
	return nil
}

// Fig11 prints the efficiency decomposition: flop-scale efficiency
// (flops/unknown/iteration, left panel) and communication/flop-rate
// efficiency (right panel), relative to the base run.
func Fig11(w io.Writer, runs []*LinearRun) error {
	if len(runs) == 0 {
		return nil
	}
	base := runs[0]
	rows := [][]string{}
	for _, r := range runs {
		e := perf.Decompose(base.Iters, r.Iters,
			base.SolveFlops, r.SolveFlops,
			base.Free, r.Free,
			base.Spec.Ranks, r.Spec.Ranks,
			base.RatePerProc(), r.RatePerProc(),
			r.LoadBalance())
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Spec.Ranks),
			fmt.Sprintf("%d", r.Free),
			fmt.Sprintf("%.3f", float64(r.SolveFlops)/float64(r.Free)/float64(r.Iters)),
			fmt.Sprintf("%.2f", e.EFs),
			fmt.Sprintf("%.2f", e.Ec),
			fmt.Sprintf("%.2f", e.Load),
			fmt.Sprintf("%.2f", e.EIs),
			fmt.Sprintf("%.2f", e.Total),
		})
	}
	fmt.Fprintln(w, "Figure 11 — efficiency decomposition vs base run (paper: e^F_s > 1 (super-linear), e_c -> ~0.6)")
	fmt.Fprint(w, perf.Table([]string{
		"ranks", "free dof", "flops/unknown/iter", "e^F_s", "e_c", "load bal", "e^I_s", "total e"}, rows))
	return nil
}

// Fig12 prints component efficiencies across the series using the paper's
// normalization e = (base_ranks/p)·(T(base)/T(p))·(N(p)/N(base)).
func Fig12(w io.Writer, runs []*LinearRun) error {
	if len(runs) == 0 {
		return nil
	}
	base := runs[0]
	// Wall clocks are single-process here, so the meaningful wall-time
	// efficiency is work scaling — (T_base/T_run)·(N_run/N_base), 1.0 for
	// an O(N) component. The modeled solve column uses the paper's
	// parallel normalization (base_ranks/p)·(T_base/T_p)·(N_p/N_base).
	eff := func(tBase, tRun time.Duration, r *LinearRun) string {
		if tRun == 0 {
			return "-"
		}
		e := (float64(tBase) / float64(tRun)) * (float64(r.Free) / float64(base.Free))
		return fmt.Sprintf("%.2f", e)
	}
	rows := [][]string{}
	for _, r := range runs {
		var modelEff string
		if r.ModelSolveMax > 0 {
			e := float64(base.Spec.Ranks) / float64(r.Spec.Ranks) *
				(base.ModelSolveMax / r.ModelSolveMax) *
				(float64(r.Free) / float64(base.Free))
			modelEff = fmt.Sprintf("%.2f", e)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Spec.Ranks),
			modelEff,
			eff(base.Wall["solve"], r.Wall["solve"], r),
			eff(base.Wall["matrix setup"], r.Wall["matrix setup"], r),
			eff(base.Wall["fine grid"], r.Wall["fine grid"], r),
			eff(base.Wall["mesh setup"], r.Wall["mesh setup"], r),
		})
	}
	fmt.Fprintln(w, "Figure 12 — component efficiencies: modeled solve uses the paper normalization; wall columns are serial work scaling (1.0 = O(N))")
	fmt.Fprint(w, perf.Table([]string{
		"ranks", "solve (model)", "solve (wall O(N))", "matrix setup", "fine grid", "mesh setup"}, rows))
	return nil
}

// Headline reports the section 7 headline: parallel efficiency of the solve
// phase at the largest configuration (paper: ~59-62% at 960 processors).
func Headline(w io.Writer, runs []*LinearRun) error {
	if len(runs) < 2 {
		return fmt.Errorf("experiments: need at least two runs")
	}
	base := runs[0]
	last := runs[len(runs)-1]
	// Parallel efficiency of the flop rate (the paper's 62%/59% figure).
	ec := last.RatePerProc() / base.RatePerProc()
	fmt.Fprintf(w, "Headline — modeled flop-rate parallel efficiency at %d ranks vs %d ranks: %.0f%% (paper: ~60%% at 960 vs 2)\n",
		last.Spec.Ranks, base.Spec.Ranks, 100*ec)
	return nil
}

// Fig7 reports the hierarchy statistics behind Figure 7: per-level vertex
// and element counts and reduction ratios for the model problem.
func Fig7(w io.Writer) error {
	s := problems.NewSpheresConfig(problems.SpheresConfig{Layers: 5, ElemsPerLayer: 2, CoreElems: 4, OuterElems: 4})
	h, err := core.Coarsen(s.Mesh, core.Options{})
	if err != nil {
		return err
	}
	rows := [][]string{}
	counts, ratios := h.VertexReduction()
	for l, g := range h.Grids {
		ratio := "-"
		if l > 0 {
			ratio = fmt.Sprintf("%.3f", ratios[l-1])
		}
		surf := 0
		for _, r := range g.Class.Rank {
			if r > 0 {
				surf++
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", l),
			fmt.Sprintf("%d", counts[l]),
			fmt.Sprintf("%d", g.Mesh.NumElems()),
			ratio,
			fmt.Sprintf("%.2f", float64(surf)/float64(counts[l])),
			fmt.Sprintf("%d", g.Lost),
		})
	}
	fmt.Fprintln(w, "Figure 7 — coarse grid hierarchy of the model problem (MIS ratio bounds on hex meshes: 1/8 .. 1/27)")
	fmt.Fprint(w, perf.Table([]string{"level", "vertices", "elements", "ratio", "surface frac", "lost"}, rows))
	return nil
}

// WriteSeriesCSV emits the scaled-study series as CSV (one row per size)
// for external plotting of Figures 10-12 and Table 2.
func WriteSeriesCSV(w io.Writer, runs []*LinearRun) error {
	if len(runs) == 0 {
		return fmt.Errorf("experiments: no runs")
	}
	base := runs[0]
	fmt.Fprintln(w, "dof,free_dof,ranks,levels,pcg_iters,model_mflops,load_balance,"+
		"eFs,ec,eIs,total_e,"+
		"wall_partition_ms,wall_mesh_setup_ms,wall_fine_grid_ms,wall_matrix_setup_ms,wall_solve_ms,model_solve_s")
	for _, r := range runs {
		e := perf.Decompose(base.Iters, r.Iters, base.SolveFlops, r.SolveFlops,
			base.Free, r.Free, base.Spec.Ranks, r.Spec.Ranks,
			base.RatePerProc(), r.RatePerProc(), r.LoadBalance())
		ms := func(name string) float64 {
			return float64(r.Wall[name].Microseconds()) / 1000
		}
		fmt.Fprintf(w, "%d,%d,%d,%d,%d,%.1f,%.3f,%.3f,%.3f,%.3f,%.3f,%.2f,%.2f,%.2f,%.2f,%.2f,%.3f\n",
			r.Dof, r.Free, r.Spec.Ranks, r.Levels, r.Iters, r.ModelMflops, r.LoadBalance(),
			e.EFs, e.Ec, e.EIs, e.Total,
			ms("partition"), ms("mesh setup"), ms("fine grid"), ms("matrix setup"), ms("solve"),
			r.ModelSolveMax)
	}
	return nil
}
