package experiments

import (
	"fmt"
	"io"

	"prometheus/internal/aggregation"
	"prometheus/internal/core"
	"prometheus/internal/fem"
	"prometheus/internal/geom"
	"prometheus/internal/graph"
	"prometheus/internal/krylov"
	"prometheus/internal/material"
	"prometheus/internal/mesh"
	"prometheus/internal/multigrid"
	"prometheus/internal/par"
	"prometheus/internal/perf"
	"prometheus/internal/problems"
	"prometheus/internal/sparse"
	"prometheus/internal/topo"
)

// ThinBody reproduces the Figure 4-6 story: on a thin slab, the plain MIS
// can lose an entire face while the modified graph (section 4.6) keeps both
// faces represented — and that matters for multigrid convergence.
func ThinBody(w io.Writer) error {
	m := problems.ThinSlab(12, 12, 0.35)
	facets := m.BoundaryFacets()
	adj := mesh.FacetAdjacency(facets)
	faceID, _ := topo.IdentifyFaces(facets, adj, topo.DefaultTOL)
	cls := topo.Classify(m.NumVerts(), facets, faceID)
	g := m.NodeGraph()

	cover := func(mis []int) (top, bottom int) {
		for _, v := range mis {
			if m.Coords[v].Z > 0.34 {
				top++
			}
			if m.Coords[v].Z < 0.01 {
				bottom++
			}
		}
		return
	}
	plain := graph.MIS(g, graph.NaturalOrder(g.N), nil, nil)
	mg := cls.ModifiedGraph(g)
	order := graph.RankedOrder(cls.Rank, graph.NaturalOrder(g.N))
	modified := graph.MIS(mg, order, cls.Rank, cls.Immortal())

	pt, pb := cover(plain)
	mt, mb := cover(modified)
	rows := [][]string{
		{"plain MIS (Figure 4)", fmt.Sprintf("%d", len(plain)), fmt.Sprintf("%d", pt), fmt.Sprintf("%d", pb)},
		{"modified graph (Figure 5-6)", fmt.Sprintf("%d", len(modified)), fmt.Sprintf("%d", mt), fmt.Sprintf("%d", mb)},
	}
	fmt.Fprintln(w, "Figures 4-6 — thin body MIS: the modified graph must keep both faces covered")
	fmt.Fprint(w, perf.Table([]string{"variant", "|MIS|", "top verts", "bottom verts"}, rows))

	// Convergence consequence: solve a bending problem on the slab with a
	// 2-level hierarchy from each MIS variant.
	iters := func(modifiedGraph bool) (int, int, error) {
		opts := core.Options{MinCoarse: 20, MaxLevels: 3}
		if !modifiedGraph {
			// Plain behaviour: classify everything interior, no immortals.
			opts.TOL = -2 // single face -> no edges deleted, no corners
		}
		h, err := core.Coarsen(m, opts)
		if err != nil {
			return 0, 0, err
		}
		p := fem.NewProblem(m, []material.Model{material.LinearElastic{E: 1, Nu: 0.3}}, false)
		k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
		if err != nil {
			return 0, 0, err
		}
		cons := fem.NewConstraints()
		for v, pt := range m.Coords {
			if pt.X == 0 {
				cons.FixVert(v, 0, 0, 0)
			}
		}
		f := make([]float64, m.NumDOF())
		for v, pt := range m.Coords {
			if geom.ApproxEq(pt.X, 12, 1e-9) {
				f[3*v+2] = -0.001
			}
		}
		dm := cons.NewDofMap(m.NumDOF())
		kred, fred := cons.Reduce(k, f, dm)
		var rs []*sparse.CSR
		for l := 1; l < h.NumLevels(); l++ {
			r := h.Grids[l].R
			if l == 1 {
				r = multigrid.CompressCols(r, dm.Full2Red, dm.NumFree())
			}
			rs = append(rs, r)
		}
		mgp, err := multigrid.New(kred, rs, multigrid.Options{})
		if err != nil {
			return 0, 0, err
		}
		x := make([]float64, kred.NRows)
		res := krylov.FPCG(kred, fred, x, mgp, 1e-6, 3000)
		if !res.Converged {
			return res.Iterations, h.NumLevels(), fmt.Errorf("not converged")
		}
		return res.Iterations, h.NumLevels(), nil
	}
	itGood, lvGood, errGood := iters(true)
	if errGood != nil {
		return errGood
	}
	itPlain, lvPlain, errPlain := iters(false)
	fmt.Fprintf(w, "MG-PCG on slab bending: modified-graph hierarchy %d its (%d levels)\n", itGood, lvGood)
	switch {
	case errPlain != nil:
		fmt.Fprintf(w, "face-blind hierarchy: %v\n", errPlain)
	case lvPlain <= 1:
		fmt.Fprintf(w, "face-blind hierarchy: coarsening collapsed (the coarse vertex set lost a face and could not be remeshed) — exactly the Figure 4 pathology; %d level(s) built\n", lvPlain)
	default:
		fmt.Fprintf(w, "face-blind hierarchy: %d its (%d levels)\n", itPlain, lvPlain)
	}
	return nil
}

// Ordering reproduces the section 4.7 ablation: MIS sizes under natural vs
// random orderings on a uniform hexahedral node graph, against the 1/8 and
// 1/27 bounds.
func Ordering(w io.Writer) error {
	m := mesh.StructuredHex(12, 12, 12, 1, 1, 1, nil)
	g := m.NodeGraph()
	nat := graph.MIS(g, graph.NaturalOrder(g.N), nil, nil)
	rows := [][]string{
		{"natural", fmt.Sprintf("%d", len(nat)), fmt.Sprintf("%.4f", float64(len(nat))/float64(g.N))},
	}
	for seed := uint64(1); seed <= 3; seed++ {
		rnd := graph.MIS(g, graph.RandomOrder(g.N, seed), nil, nil)
		rows = append(rows, []string{
			fmt.Sprintf("random(seed=%d)", seed),
			fmt.Sprintf("%d", len(rnd)),
			fmt.Sprintf("%.4f", float64(len(rnd))/float64(g.N)),
		})
	}
	rows = append(rows,
		[]string{"bound 1/2^3", "-", fmt.Sprintf("%.4f", 1.0/8)},
		[]string{"bound 1/3^3", "-", fmt.Sprintf("%.4f", 1.0/27)},
	)
	fmt.Fprintln(w, "Section 4.7 — MIS size vs vertex ordering on a uniform hex node graph (13^3 vertices)")
	fmt.Fprint(w, perf.Table([]string{"ordering", "|MIS|", "|MIS|/|V|"}, rows))
	return nil
}

// ParallelMISStudy reports the section 4.2 algorithm across rank counts:
// set sizes, determinism and the MIS invariants.
func ParallelMISStudy(w io.Writer) error {
	m := mesh.StructuredHex(8, 8, 8, 1, 1, 1, nil)
	g := m.NodeGraph()
	cls := topo.Reclassify(m, topo.DefaultTOL)
	order := graph.RankedOrder(cls.Rank, graph.NaturalOrder(g.N))
	serial := graph.MIS(cls.ModifiedGraph(g), order, cls.Rank, cls.Immortal())
	rows := [][]string{{"serial", fmt.Sprintf("%d", len(serial)), "-", "yes"}}
	for _, p := range []int{2, 4, 8, 16} {
		owner := graph.RCB(m.Coords, p)
		mg := cls.ModifiedGraph(g)
		a := par.ParallelMIS(par.NewComm(p), mg, owner, order, cls.Rank, cls.Immortal())
		b := par.ParallelMIS(par.NewComm(p), mg, owner, order, cls.Rank, cls.Immortal())
		det := "yes"
		if len(a) != len(b) {
			det = "NO"
		} else {
			for i := range a {
				if a[i] != b[i] {
					det = "NO"
					break
				}
			}
		}
		maximal := "yes"
		if !graph.IsMaximal(mg, a) {
			maximal = "NO"
		}
		rows = append(rows, []string{
			fmt.Sprintf("parallel p=%d", p),
			fmt.Sprintf("%d", len(a)), det, maximal,
		})
	}
	fmt.Fprintln(w, "Section 4.2 — parallel MIS across rank counts (9^3 hex node graph, modified graph + ranks)")
	fmt.Fprint(w, perf.Table([]string{"variant", "|MIS|", "deterministic", "maximal"}, rows))
	return nil
}

// AblationTOL sweeps the face identification tolerance and reports face
// counts and solver iterations on the model problem (experiment E16).
func AblationTOL(w io.Writer) error {
	cfg := problems.SpheresConfig{Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2}
	rows := [][]string{}
	for _, tol := range []float64{0.5, 0.707, 0.866, 0.966} {
		its, faces, err := solveSpheresWith(cfg, core.Options{TOL: tol}, multigrid.Options{})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", tol), fmt.Sprintf("%d", faces), fmt.Sprintf("%d", its),
		})
	}
	fmt.Fprintln(w, "Ablation — face identification tolerance TOL (paper: user parameter; default cos 30°)")
	fmt.Fprint(w, perf.Table([]string{"TOL", "fine-grid faces", "MG-PCG iters"}, rows))
	return nil
}

// AblationReclassify compares inheriting classifications on all grids
// against the paper's reclassify-from-the-third-grid policy (E17).
func AblationReclassify(w io.Writer) error {
	cfg := problems.SpheresConfig{Layers: 5, ElemsPerLayer: 2, CoreElems: 4, OuterElems: 4}
	rows := [][]string{}
	for _, rf := range []struct {
		name string
		from int
	}{{"reclassify from grid 2 (paper)", 2}, {"never reclassify", 99}, {"reclassify every grid", 1}} {
		its, _, err := solveSpheresWith(cfg, core.Options{ReclassifyFrom: rf.from}, multigrid.Options{})
		if err != nil {
			return err
		}
		rows = append(rows, []string{rf.name, fmt.Sprintf("%d", its)})
	}
	fmt.Fprintln(w, "Ablation — coarse grid reclassification policy (section 4.6)")
	fmt.Fprint(w, perf.Table([]string{"policy", "MG-PCG iters"}, rows))
	return nil
}

// AblationBlocks sweeps the block-Jacobi density around the paper's
// 6-per-1000 rule (E18).
func AblationBlocks(w io.Writer) error {
	cfg := problems.SpheresConfig{Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2}
	rows := [][]string{}
	for _, bpt := range []int{1, 6, 24, 96} {
		bpt := bpt
		its, _, err := solveSpheresWith(cfg, core.Options{}, multigrid.Options{
			BlockCount: func(n int) int {
				nb := n * bpt / 1000
				if nb < 1 {
					nb = 1
				}
				return nb
			},
		})
		if err != nil {
			return err
		}
		rows = append(rows, []string{fmt.Sprintf("%d/1000", bpt), fmt.Sprintf("%d", its)})
	}
	fmt.Fprintln(w, "Ablation — block Jacobi density (paper: 6 blocks per 1000 unknowns)")
	fmt.Fprint(w, perf.Table([]string{"blocks", "MG-PCG iters"}, rows))
	return nil
}

// AblationCycle compares FMG against V-cycle preconditioning (E19).
func AblationCycle(w io.Writer) error {
	cfg := problems.SpheresConfig{Layers: 5, ElemsPerLayer: 2, CoreElems: 4, OuterElems: 4}
	rows := [][]string{}
	for _, c := range []struct {
		name string
		kind multigrid.CycleKind
	}{{"FMG (paper)", multigrid.FMG}, {"V-cycle", multigrid.VCycle}, {"W-cycle", multigrid.WCycle}} {
		its, _, err := solveSpheresWith(cfg, core.Options{}, multigrid.Options{Cycle: c.kind})
		if err != nil {
			return err
		}
		rows = append(rows, []string{c.name, fmt.Sprintf("%d", its)})
	}
	fmt.Fprintln(w, "Ablation — multigrid cycle used as the CG preconditioner")
	fmt.Fprint(w, perf.Table([]string{"cycle", "MG-PCG iters"}, rows))
	return nil
}

// solveSpheresWith runs one linear solve of the model problem with custom
// coarsening and MG options, returning iterations and the fine face count.
func solveSpheresWith(cfg problems.SpheresConfig, copts core.Options, mopts multigrid.Options) (int, int, error) {
	s := problems.NewSpheresConfig(cfg)
	h, err := core.Coarsen(s.Mesh, copts)
	if err != nil {
		return 0, 0, err
	}
	// Count fine faces for reporting.
	facets := s.Mesh.BoundaryFacets()
	adjF := mesh.FacetAdjacency(facets)
	tol := copts.TOL
	if tol == 0 {
		tol = topo.DefaultTOL
	}
	_, faces := topo.IdentifyFaces(facets, adjF, tol)

	p := fem.NewProblem(s.Mesh, s.Models, true)
	u := make([]float64, s.Mesh.NumDOF())
	s.Cons.Scaled(0.1).Apply(u)
	k, fint, err := p.AssembleTangent(u)
	if err != nil {
		return 0, 0, err
	}
	zero := fem.NewConstraints()
	for d := range s.Cons.Fixed {
		zero.FixDof(d, 0)
	}
	dm := zero.NewDofMap(s.Mesh.NumDOF())
	r := make([]float64, len(fint))
	for i := range r {
		r[i] = -fint[i]
	}
	kred, rred := zero.Reduce(k, r, dm)
	var rs []*sparse.CSR
	for l := 1; l < h.NumLevels(); l++ {
		rr := h.Grids[l].R
		if l == 1 {
			rr = multigrid.CompressCols(rr, dm.Full2Red, dm.NumFree())
		}
		rs = append(rs, rr)
	}
	mg, err := multigrid.New(kred, rs, mopts)
	if err != nil {
		return 0, 0, err
	}
	x := make([]float64, kred.NRows)
	res := krylov.FPCG(kred, rred, x, mg, 1e-4, 3000)
	if !res.Converged {
		return res.Iterations, faces, fmt.Errorf("not converged in %d", res.Iterations)
	}
	return res.Iterations, faces, nil
}

// AMGCompare runs the section 8 comparison the paper planned: the MIS
// geometric coarsening of this paper against smoothed aggregation [25] on
// the same model problem, same smoother, same outer Krylov method.
func AMGCompare(w io.Writer) error {
	cfg := problems.SpheresConfig{Layers: 5, ElemsPerLayer: 2, CoreElems: 4, OuterElems: 4}
	s := problems.NewSpheresConfig(cfg)
	p := fem.NewProblem(s.Mesh, s.Models, true)
	u := make([]float64, s.Mesh.NumDOF())
	s.Cons.Scaled(0.1).Apply(u)
	k, fint, err := p.AssembleTangent(u)
	if err != nil {
		return err
	}
	zero := fem.NewConstraints()
	for d := range s.Cons.Fixed {
		zero.FixDof(d, 0)
	}
	dm := zero.NewDofMap(s.Mesh.NumDOF())
	r := make([]float64, len(fint))
	for i := range r {
		r[i] = -fint[i]
	}
	kred, rred := zero.Reduce(k, r, dm)

	solveWith := func(rs []*sparse.CSR) (int, float64, int, error) {
		mg, err := multigrid.New(kred, rs, multigrid.Options{})
		if err != nil {
			return 0, 0, 0, err
		}
		x := make([]float64, kred.NRows)
		res := krylov.FPCG(kred, rred, x, mg, 1e-4, 3000)
		if !res.Converged {
			return res.Iterations, 0, 0, fmt.Errorf("not converged")
		}
		return res.Iterations, mg.OperatorComplexity(), mg.NumLevels(), nil
	}

	// Prometheus (this paper): geometric MIS hierarchy.
	h, err := core.Coarsen(s.Mesh, core.Options{})
	if err != nil {
		return err
	}
	var rsGeo []*sparse.CSR
	for l := 1; l < h.NumLevels(); l++ {
		rr := h.Grids[l].R
		if l == 1 {
			rr = multigrid.CompressCols(rr, dm.Full2Red, dm.NumFree())
		}
		rsGeo = append(rsGeo, rr)
	}
	itGeo, ocGeo, lvGeo, err := solveWith(rsGeo)
	if err != nil {
		return fmt.Errorf("geometric: %w", err)
	}

	// Smoothed aggregation [25] with rigid body modes.
	bnn := aggregation.RigidBodyModes(s.Mesh.Coords, dm.Full2Red, dm.NumFree())
	rsSA, err := aggregation.BuildRestrictions(kred, bnn, aggregation.Options{})
	if err != nil {
		return err
	}
	itSA, ocSA, lvSA, err := solveWith(rsSA)
	if err != nil {
		return fmt.Errorf("smoothed aggregation: %w", err)
	}

	rows := [][]string{
		{"MIS geometric (this paper)", fmt.Sprintf("%d", lvGeo), fmt.Sprintf("%d", itGeo), fmt.Sprintf("%.2f", ocGeo)},
		{"smoothed aggregation [25]", fmt.Sprintf("%d", lvSA), fmt.Sprintf("%d", itSA), fmt.Sprintf("%.2f", ocSA)},
	}
	fmt.Fprintln(w, "Section 8 — MIS geometric coarsening vs smoothed aggregation on the model problem")
	fmt.Fprint(w, perf.Table([]string{"hierarchy", "levels", "MG-PCG iters (rtol=1e-4)", "op complexity"}, rows))
	return nil
}

// AblationKrylov compares the outer Krylov methods with the same multigrid
// preconditioner: flexible CG (our default), plain PCG, and GMRES(30) (the
// solver family of the paper's reference [18]).
func AblationKrylov(w io.Writer) error {
	cfg := problems.SpheresConfig{Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2}
	s := problems.NewSpheresConfig(cfg)
	p := fem.NewProblem(s.Mesh, s.Models, true)
	u := make([]float64, s.Mesh.NumDOF())
	s.Cons.Scaled(0.1).Apply(u)
	k, fint, err := p.AssembleTangent(u)
	if err != nil {
		return err
	}
	zero := fem.NewConstraints()
	for d := range s.Cons.Fixed {
		zero.FixDof(d, 0)
	}
	dm := zero.NewDofMap(s.Mesh.NumDOF())
	r := make([]float64, len(fint))
	for i := range r {
		r[i] = -fint[i]
	}
	kred, rred := zero.Reduce(k, r, dm)
	h, err := core.Coarsen(s.Mesh, core.Options{})
	if err != nil {
		return err
	}
	var rs []*sparse.CSR
	for l := 1; l < h.NumLevels(); l++ {
		rr := h.Grids[l].R
		if l == 1 {
			rr = multigrid.CompressCols(rr, dm.Full2Red, dm.NumFree())
		}
		rs = append(rs, rr)
	}
	rows := [][]string{}
	run := func(name string, solve func(mg *multigrid.MG) krylov.Result) error {
		mg, err := multigrid.New(kred, rs, multigrid.Options{})
		if err != nil {
			return err
		}
		res := solve(mg)
		conv := "yes"
		if !res.Converged {
			conv = "NO"
		}
		rows = append(rows, []string{name, fmt.Sprintf("%d", res.Iterations), conv})
		return nil
	}
	if err := run("flexible CG (default)", func(mg *multigrid.MG) krylov.Result {
		x := make([]float64, kred.NRows)
		return krylov.FPCG(kred, rred, x, mg, 1e-4, 500)
	}); err != nil {
		return err
	}
	if err := run("plain PCG", func(mg *multigrid.MG) krylov.Result {
		x := make([]float64, kred.NRows)
		return krylov.PCG(kred, rred, x, mg, 1e-4, 500)
	}); err != nil {
		return err
	}
	if err := run("GMRES(30) [18]", func(mg *multigrid.MG) krylov.Result {
		x := make([]float64, kred.NRows)
		return krylov.GMRES(kred, rred, x, mg, 30, 1e-4, 500)
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation — outer Krylov method with the same FMG preconditioner")
	fmt.Fprint(w, perf.Table([]string{"method", "iters (rtol=1e-4)", "converged"}, rows))
	return nil
}

// Amortization demonstrates the section 6 three-phase cost structure: the
// mesh setup (restriction construction) is paid once per mesh, the matrix
// setup (Galerkin products + factorizations) once per assembled matrix,
// and the solve once per right-hand side. Linear transient analysis
// amortizes the first two; fully nonlinear analysis amortizes only the
// first (exactly the paper's discussion).
func Amortization(w io.Writer) error {
	cfg := problems.SpheresConfig{Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2}
	s := problems.NewSpheresConfig(cfg)
	p := fem.NewProblem(s.Mesh, s.Models, true)
	u := make([]float64, s.Mesh.NumDOF())
	s.Cons.Scaled(0.1).Apply(u)

	phases := perf.NewPhases()
	var k *sparse.CSR
	var fint []float64
	var err error
	phases.Time("fine grid (per mesh)", func() { k, fint, err = p.AssembleTangent(u) })
	if err != nil {
		return err
	}
	zero := fem.NewConstraints()
	for d := range s.Cons.Fixed {
		zero.FixDof(d, 0)
	}
	dm := zero.NewDofMap(s.Mesh.NumDOF())
	rhs := make([]float64, len(fint))
	for i := range rhs {
		rhs[i] = -fint[i]
	}
	kred, rred := zero.Reduce(k, rhs, dm)

	var h *core.Hierarchy
	phases.Time("mesh setup (per mesh)", func() { h, err = core.Coarsen(s.Mesh, core.Options{}) })
	if err != nil {
		return err
	}
	var rs []*sparse.CSR
	for l := 1; l < h.NumLevels(); l++ {
		rr := h.Grids[l].R
		if l == 1 {
			rr = multigrid.CompressCols(rr, dm.Full2Red, dm.NumFree())
		}
		rs = append(rs, rr)
	}
	var mg *multigrid.MG
	phases.Time("matrix setup (per matrix)", func() { mg, err = multigrid.New(kred, rs, multigrid.Options{}) })
	if err != nil {
		return err
	}
	const nRHS = 8
	totalIts := 0
	phases.Time(fmt.Sprintf("solve x%d (per RHS)", nRHS), func() {
		for r := 0; r < nRHS; r++ {
			b := make([]float64, len(rred))
			for i := range b {
				b[i] = rred[i] * (1 + 0.1*float64(r))
			}
			b[r%len(b)] += 1e-6 // distinct RHS
			x := make([]float64, kred.NRows)
			res := krylov.FPCG(kred, b, x, mg, 1e-4, 2000)
			if !res.Converged {
				err = fmt.Errorf("rhs %d did not converge", r)
				return
			}
			totalIts += res.Iterations
		}
	})
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, name := range phases.Names() {
		rows = append(rows, []string{name, fmt.Sprintf("%.1f", float64(phases.Wall[name].Microseconds())/1000)})
	}
	fmt.Fprintln(w, "Section 6 — three-phase amortization (one mesh, one matrix, many right-hand sides)")
	fmt.Fprint(w, perf.Table([]string{"phase", "wall ms"}, rows))
	fmt.Fprintf(w, "%d RHS solved with one mesh + matrix setup (%d total PCG its); transient analyses amortize the setup phases exactly as section 6 describes\n", nRHS, totalIts)
	return nil
}
