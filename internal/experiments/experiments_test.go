package experiments

import (
	"bytes"
	"strings"
	"testing"

	"prometheus/internal/multigrid"
	"prometheus/internal/perf"
	"prometheus/internal/problems"
)

func TestSeriesSpecs(t *testing.T) {
	specs := Series(3)
	if len(specs) != 3 {
		t.Fatalf("specs = %d", len(specs))
	}
	prevDof := 0
	for _, s := range specs {
		n := s.Cfg.NumRadial()
		dof := 3 * (n + 1) * (n + 1) * (n + 1)
		if dof <= prevDof {
			t.Fatal("series must grow")
		}
		prevDof = dof
		// Constant dof per rank within a factor of two.
		perRank := float64(dof) / float64(s.Ranks)
		if perRank < TargetDofPerRank/2 || perRank > 2*TargetDofPerRank {
			t.Fatalf("%s: dof/rank = %v", s.Name, perRank)
		}
	}
}

func TestRunLinearSmallest(t *testing.T) {
	r, err := RunLinear(Series(1)[0], perf.PaperIBM(), multigrid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Iters < 5 || r.Iters > 100 {
		t.Fatalf("iters = %d", r.Iters)
	}
	if r.Levels < 3 {
		t.Fatalf("levels = %d", r.Levels)
	}
	// The rank model must conserve work: sum of per-rank flops within 1%
	// of the measured total.
	var sum int64
	for _, f := range r.RankFlops {
		sum += f
	}
	if ratio := float64(sum) / float64(r.SolveFlops); ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("rank flops %d vs solve flops %d", sum, r.SolveFlops)
	}
	if r.LoadBalance() <= 0.3 || r.LoadBalance() > 1 {
		t.Fatalf("load balance = %v", r.LoadBalance())
	}
	// With 2 ranks there must be halo traffic.
	if perf.Sum(r.RankBytes) == 0 {
		t.Fatal("no modeled communication")
	}
	if r.ModelSolveMax <= 0 || r.ModelMflops <= 0 {
		t.Fatal("machine model produced no time")
	}
	for _, phase := range []string{"partition", "mesh setup", "fine grid", "matrix setup", "solve"} {
		if r.Wall[phase] <= 0 {
			t.Fatalf("phase %q not timed", phase)
		}
	}
}

func TestReportsRender(t *testing.T) {
	runs, err := RunSeries(1, multigrid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	for name, fn := range map[string]func() error{
		"table1":   func() error { return Table1(&b) },
		"table2":   func() error { return Table2(&b, runs) },
		"fig9":     func() error { return Fig9(&b) },
		"fig10":    func() error { return Fig10(&b, runs) },
		"fig11":    func() error { return Fig11(&b, runs) },
		"fig12":    func() error { return Fig12(&b, runs) },
		"thinbody": func() error { return ThinBody(&b) },
		"ordering": func() error { return Ordering(&b) },
		"parmis":   func() error { return ParallelMISStudy(&b) },
	} {
		if err := fn(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	out := b.String()
	for _, want := range []string{"Table 1", "Table 2", "Figure 9", "Figure 10",
		"Figure 11", "Figure 12", "thin body", "ordering", "parallel"} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestScaledYieldStress(t *testing.T) {
	// The paper's own geometry gets the Table 1 value.
	full := problems.SpheresConfig{Layers: problems.NumLayers}
	if got := ScaledYieldStress(full); got != 1e-3 {
		t.Fatalf("17-layer yield = %v", got)
	}
	// Thicker shells get proportionally lower yield stresses.
	small := problems.SpheresConfig{Layers: 5}
	if got := ScaledYieldStress(small); got >= 1e-3 || got <= 1e-4 {
		t.Fatalf("5-layer yield = %v", got)
	}
}

func TestRunNonlinearTiny(t *testing.T) {
	spec := SizeSpec{
		Name: "tiny",
		Cfg:  problems.SpheresConfig{Layers: 3, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2},
	}
	r, err := RunNonlinear(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stats.Steps) != 3 {
		t.Fatalf("steps = %d", len(r.Stats.Steps))
	}
	if r.Stats.TotalNewton < 3 || r.Stats.TotalPCG < r.Stats.TotalNewton {
		t.Fatalf("stats = %+v", r.Stats)
	}
}

func TestHeadlineNeedsTwoRuns(t *testing.T) {
	var b bytes.Buffer
	if err := Headline(&b, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestSlowReportsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var b bytes.Buffer
	for name, fn := range map[string]func() error{
		"fig13":      func() error { return Fig13(&b, 1, 2) },
		"amg":        func() error { return AMGCompare(&b) },
		"phases":     func() error { return Amortization(&b) },
		"abl-tol":    func() error { return AblationTOL(&b) },
		"abl-blocks": func() error { return AblationBlocks(&b) },
		"abl-krylov": func() error { return AblationKrylov(&b) },
	} {
		if err := fn(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	out := b.String()
	for _, want := range []string{"Figure 13", "smoothed aggregation", "amortization",
		"tolerance TOL", "block Jacobi density", "Krylov"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestHeadlineRenders(t *testing.T) {
	runs, err := RunSeries(2, multigrid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := Headline(&b, runs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "parallel efficiency") {
		t.Fatal("headline missing")
	}
	// Fig12 too (uses the same runs).
	if err := Fig12(&b, runs); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	runs, err := RunSeries(1, multigrid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := WriteSeriesCSV(&b, runs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "dof,free_dof,ranks") {
		t.Fatalf("header = %q", lines[0])
	}
	if err := WriteSeriesCSV(&b, nil); err == nil {
		t.Fatal("expected error on empty runs")
	}
}
