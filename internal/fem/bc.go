package fem

import (
	"prometheus/internal/sparse"
)

// Constraints holds Dirichlet boundary conditions as dof -> prescribed
// value. The solver eliminates constrained dofs, producing a reduced SPD
// system over the free dofs (the approach used throughout: the coarse grids
// carry no constraints of their own, the Galerkin products inherit them).
type Constraints struct {
	Fixed map[int]float64
}

// NewConstraints returns an empty constraint set.
func NewConstraints() *Constraints {
	return &Constraints{Fixed: make(map[int]float64)}
}

// FixVert constrains all three dofs of vertex v to the given displacement.
func (c *Constraints) FixVert(v int, ux, uy, uz float64) {
	c.Fixed[3*v] = ux
	c.Fixed[3*v+1] = uy
	c.Fixed[3*v+2] = uz
}

// FixDof constrains a single dof (3*vert + comp).
func (c *Constraints) FixDof(dof int, val float64) { c.Fixed[dof] = val }

// SetScale multiplies every prescribed value by s (load stepping of the
// displacement-driven problems).
func (c *Constraints) Scaled(s float64) *Constraints {
	out := NewConstraints()
	for d, v := range c.Fixed {
		out.Fixed[d] = v * s
	}
	return out
}

// DofMap relates the full dof numbering to the reduced (free) numbering.
type DofMap struct {
	Full2Red []int // -1 for constrained dofs
	Red2Full []int
}

// NumFree returns the number of free dofs.
func (m *DofMap) NumFree() int { return len(m.Red2Full) }

// NodeAligned reports whether the reduced numbering preserves b-dof node
// blocks: every node has either all b of its dofs free or all b fixed, and
// free nodes keep their dofs consecutive in the reduced numbering. When
// true, the reduced operator can be stored in b-block BSR form with node
// boundaries intact. Constraints built with FixVert satisfy this;
// component-wise FixDof constraints (e.g. a symmetry plane) do not.
func (m *DofMap) NodeAligned(b int) bool {
	if b <= 1 || len(m.Full2Red)%b != 0 {
		return false
	}
	for v := 0; v < len(m.Full2Red); v += b {
		r0 := m.Full2Red[v]
		free := r0 >= 0
		for d := 1; d < b; d++ {
			r := m.Full2Red[v+d]
			if (r >= 0) != free {
				return false
			}
			if free && r != r0+d {
				return false
			}
		}
	}
	return true
}

// NewDofMap builds the mapping for n total dofs under the constraints.
func (c *Constraints) NewDofMap(n int) *DofMap {
	m := &DofMap{Full2Red: make([]int, n)}
	for d := 0; d < n; d++ {
		if _, fixed := c.Fixed[d]; fixed {
			m.Full2Red[d] = -1
			continue
		}
		m.Full2Red[d] = len(m.Red2Full)
		m.Red2Full = append(m.Red2Full, d)
	}
	return m
}

// Apply writes the prescribed values into the full displacement vector.
func (c *Constraints) Apply(u []float64) {
	for d, v := range c.Fixed {
		u[d] = v
	}
}

// Reduce eliminates the constrained dofs from the full system K·u = f:
// it returns the reduced matrix over free dofs and the reduced right-hand
// side fRed = f_free - K_fc·u_c with the prescribed values u_c.
func (c *Constraints) Reduce(k *sparse.CSR, f []float64, m *DofMap) (*sparse.CSR, []float64) {
	nRed := m.NumFree()
	kb := sparse.NewBuilder(nRed, nRed)
	fr := make([]float64, nRed)
	for rFull, rRed := range m.Full2Red {
		if rRed < 0 {
			continue
		}
		fr[rRed] = f[rFull]
		cols, vals := k.Row(rFull)
		for i, cFull := range cols {
			if cRed := m.Full2Red[cFull]; cRed >= 0 {
				kb.Add(rRed, cRed, vals[i])
			} else {
				fr[rRed] -= vals[i] * c.Fixed[cFull]
			}
		}
	}
	return kb.Build(), fr
}

// Expand scatters a reduced vector into a full vector, filling constrained
// entries with their prescribed values.
func (c *Constraints) Expand(red []float64, m *DofMap, full []float64) {
	for d := range full {
		full[d] = 0
	}
	c.Apply(full)
	for r, d := range m.Red2Full {
		full[d] = red[r]
	}
}

// RestrictVec gathers the free entries of a full vector.
func (m *DofMap) RestrictVec(full []float64) []float64 {
	out := make([]float64, m.NumFree())
	for r, d := range m.Red2Full {
		out[r] = full[d]
	}
	return out
}
