package fem

import (
	"math"
	"math/rand"
	"testing"

	"prometheus/internal/geom"
	"prometheus/internal/la"
	"prometheus/internal/material"
	"prometheus/internal/mesh"
	"prometheus/internal/sparse"
)

func linearModels() []material.Model {
	return []material.Model{material.LinearElastic{E: 1, Nu: 0.3}}
}

func TestHexShapePartitionOfUnity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		xi := geom.Vec3{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1, Z: rng.Float64()*2 - 1}
		n, dn := HexShape(xi)
		sum := 0.0
		var gsum geom.Vec3
		for a := 0; a < 8; a++ {
			sum += n[a]
			gsum = gsum.Add(dn[a])
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("sum N = %v", sum)
		}
		if gsum.Norm() > 1e-12 {
			t.Fatalf("sum dN = %v", gsum)
		}
	}
	// Kronecker property at the nodes.
	for a := 0; a < 8; a++ {
		n, _ := HexShape(hexNodes[a])
		for b := 0; b < 8; b++ {
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(n[b]-want) > 1e-12 {
				t.Fatalf("N%d at node %d = %v", b, a, n[b])
			}
		}
	}
}

func TestTetShape(t *testing.T) {
	n, dn := TetShape(geom.Vec3{X: 0.2, Y: 0.3, Z: 0.1})
	if math.Abs(n[0]+n[1]+n[2]+n[3]-1) > 1e-15 {
		t.Fatal("partition of unity")
	}
	g := dn[0].Add(dn[1]).Add(dn[2]).Add(dn[3])
	if g.Norm() > 1e-15 {
		t.Fatal("gradients must sum to zero")
	}
}

func TestJacobianUnitCube(t *testing.T) {
	// A unit cube element: J = I/2 scaled by half-extents (0.5), det = 1/8.
	m := mesh.StructuredHex(1, 1, 1, 1, 1, 1, nil)
	coords := make([]geom.Vec3, 8)
	for a, v := range m.Elems[0] {
		coords[a] = m.Coords[v]
	}
	_, dn := HexShape(geom.Vec3{})
	detJ, dndx := jacobian(coords, dn[:])
	if math.Abs(detJ-1.0/8) > 1e-14 {
		t.Fatalf("detJ = %v, want 1/8", detJ)
	}
	// dN/dx of node 0 at center: (-1/4, -1/4, -1/4) after mapping.
	if math.Abs(dndx[0].X+0.25) > 1e-14 {
		t.Fatalf("dndx[0] = %v", dndx[0])
	}
}

// applyLinearField returns u(x) = A·x + b as a dof vector.
func applyLinearField(m *mesh.Mesh, a [3][3]float64, b geom.Vec3) []float64 {
	u := make([]float64, m.NumDOF())
	for v, p := range m.Coords {
		u[3*v] = a[0][0]*p.X + a[0][1]*p.Y + a[0][2]*p.Z + b.X
		u[3*v+1] = a[1][0]*p.X + a[1][1]*p.Y + a[1][2]*p.Z + b.Y
		u[3*v+2] = a[2][0]*p.X + a[2][1]*p.Y + a[2][2]*p.Z + b.Z
	}
	return u
}

func TestRigidBodyModes(t *testing.T) {
	m := mesh.StructuredHex(2, 2, 2, 1.3, 0.9, 1.1, nil)
	p := NewProblem(m, linearModels(), false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	if !k.IsSymmetric(1e-10) {
		t.Fatal("K not symmetric")
	}
	// Translations and infinitesimal rotations are in the null space.
	modes := [][3][3]float64{
		{},                                 // translation handled by b
		{{0, -1, 0}, {1, 0, 0}, {0, 0, 0}}, // rot z
		{{0, 0, 1}, {0, 0, 0}, {-1, 0, 0}}, // rot y
		{{0, 0, 0}, {0, 0, -1}, {0, 1, 0}}, // rot x
	}
	y := make([]float64, m.NumDOF())
	for i, a := range modes {
		b := geom.Vec3{}
		if i == 0 {
			b = geom.Vec3{X: 0.3, Y: -0.2, Z: 0.7}
		}
		u := applyLinearField(m, a, b)
		k.MulVec(u, y)
		if r := la.MaxAbs(y); r > 1e-12 {
			t.Fatalf("mode %d not in null space: |K·u| = %v", i, r)
		}
	}
}

func TestPatchTestConstantStrain(t *testing.T) {
	// Linear displacement field => constant strain & stress; internal
	// forces must vanish at interior dofs (equilibrium of constant stress).
	m := mesh.StructuredHex(3, 3, 3, 1, 1, 1, nil)
	// Perturb interior vertices to make elements non-rectangular.
	rng := rand.New(rand.NewSource(2))
	facets := m.BoundaryFacets()
	ext := mesh.ExteriorVerts(m.NumVerts(), facets)
	for v := range m.Coords {
		if !ext[v] {
			m.Coords[v] = m.Coords[v].Add(geom.Vec3{
				X: (rng.Float64() - 0.5) * 0.1,
				Y: (rng.Float64() - 0.5) * 0.1,
				Z: (rng.Float64() - 0.5) * 0.1,
			})
		}
	}
	for _, bbar := range []bool{false, true} {
		p := NewProblem(m, linearModels(), bbar)
		a := [3][3]float64{{0.01, 0.002, 0}, {0.002, -0.005, 0.001}, {0, 0.001, 0.004}}
		u := applyLinearField(m, a, geom.Vec3{})
		_, fint, err := p.AssembleTangent(u)
		if err != nil {
			t.Fatal(err)
		}
		for v := range m.Coords {
			if ext[v] {
				continue
			}
			for c := 0; c < 3; c++ {
				if math.Abs(fint[3*v+c]) > 1e-12 {
					t.Fatalf("bbar=%v: interior residual at vert %d comp %d = %v", bbar, v, c, fint[3*v+c])
				}
			}
		}
	}
}

func TestTangentConsistencyFD(t *testing.T) {
	// K(u) must be the derivative of fint(u) — checked on the nonlinear
	// materials with a random displacement state.
	m := mesh.StructuredHex(2, 1, 1, 1, 1, 1, func(c geom.Vec3) int {
		if c.X < 0.5 {
			return 0
		}
		return 1
	})
	models := material.Database()
	p := NewProblem(m, models, true)
	rng := rand.New(rand.NewSource(3))
	u := make([]float64, m.NumDOF())
	for i := range u {
		u[i] = (rng.Float64() - 0.5) * 0.02
	}
	k, f0, err := p.AssembleTangent(u)
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-7
	for _, dof := range []int{0, 5, 13, 20, m.NumDOF() - 1} {
		up := append([]float64(nil), u...)
		up[dof] += h
		_, fp, err := p.AssembleTangent(up)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f0 {
			fd := (fp[i] - f0[i]) / h
			if math.Abs(fd-k.At(i, dof)) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("K(%d,%d) = %v, FD = %v", i, dof, k.At(i, dof), fd)
			}
		}
	}
}

func cubeWithBottomFixed(n int) (*mesh.Mesh, *Constraints) {
	m := mesh.StructuredHex(n, n, n, 1, 1, 1, nil)
	c := NewConstraints()
	for _, v := range m.VertsWhere(func(p geom.Vec3) bool { return p.Z == 0 }) {
		c.FixVert(v, 0, 0, 0)
	}
	return m, c
}

func TestReducedSystemSPD(t *testing.T) {
	m, c := cubeWithBottomFixed(2)
	p := NewProblem(m, linearModels(), false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	dm := c.NewDofMap(m.NumDOF())
	f := make([]float64, m.NumDOF())
	kr, _ := c.Reduce(k, f, dm)
	if kr.NRows != m.NumDOF()-3*9 {
		t.Fatalf("reduced size %d", kr.NRows)
	}
	if !kr.IsSymmetric(1e-10) {
		t.Fatal("reduced K not symmetric")
	}
	// SPD: dense Cholesky must succeed.
	d := la.NewDense(kr.NRows, kr.NCols)
	for i := 0; i < kr.NRows; i++ {
		cols, vals := kr.Row(i)
		for kk, j := range cols {
			d.Set(i, j, vals[kk])
		}
	}
	if _, err := la.NewCholesky(d); err != nil {
		t.Fatalf("reduced K not SPD: %v", err)
	}
}

func TestPrescribedDisplacementSolve(t *testing.T) {
	// Uniaxial compression of a single-material cube by prescribed top
	// displacement with roller sides: the strain field is homogeneous,
	// eps_zz = delta / L, and lateral strains are zero (confined), so
	// sigma_zz = (lambda + 2 mu) eps_zz.
	n := 2
	m := mesh.StructuredHex(n, n, n, 1, 1, 1, nil)
	c := NewConstraints()
	delta := -0.01
	for v, pnt := range m.Coords {
		if pnt.Z == 0 {
			c.FixDof(3*v+2, 0)
		}
		if pnt.Z == 1 {
			c.FixDof(3*v+2, delta)
		}
		if pnt.X == 0 || pnt.X == 1 {
			c.FixDof(3*v, 0)
		}
		if pnt.Y == 0 || pnt.Y == 1 {
			c.FixDof(3*v+1, 0)
		}
	}
	p := NewProblem(m, linearModels(), false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	dm := c.NewDofMap(m.NumDOF())
	f := make([]float64, m.NumDOF())
	kr, fr := c.Reduce(k, f, dm)
	// Direct dense solve of the reduced system.
	d := la.NewDense(kr.NRows, kr.NCols)
	for i := 0; i < kr.NRows; i++ {
		cols, vals := kr.Row(i)
		for kk, j := range cols {
			d.Set(i, j, vals[kk])
		}
	}
	chol, err := la.NewCholesky(d)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, kr.NRows)
	chol.Solve(fr, x)
	full := make([]float64, m.NumDOF())
	c.Expand(x, dm, full)
	// Check: mid-plane vertices move by delta/2 in z.
	for v, pnt := range m.Coords {
		if pnt.Z == 0.5 {
			if math.Abs(full[3*v+2]-delta/2) > 1e-10 {
				t.Fatalf("u_z at mid vertex %d = %v, want %v", v, full[3*v+2], delta/2)
			}
		}
	}
}

func TestBBarRelievesLocking(t *testing.T) {
	// Near-incompressible bending: B-bar must be significantly more
	// compliant than the plain displacement element.
	models := []material.Model{material.LinearElastic{E: 1, Nu: 0.499}}
	tip := func(bbar bool) float64 {
		m := mesh.StructuredHex(6, 1, 1, 6, 1, 1, nil)
		c := NewConstraints()
		for _, v := range m.VertsWhere(func(p geom.Vec3) bool { return p.X == 0 }) {
			c.FixVert(v, 0, 0, 0)
		}
		p := NewProblem(m, models, bbar)
		k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
		if err != nil {
			t.Fatal(err)
		}
		f := make([]float64, m.NumDOF())
		for _, v := range m.VertsWhere(func(p geom.Vec3) bool { return p.X == 6 }) {
			f[3*v+2] = -0.0001
		}
		dm := c.NewDofMap(m.NumDOF())
		kr, fr := c.Reduce(k, f, dm)
		d := la.NewDense(kr.NRows, kr.NCols)
		for i := 0; i < kr.NRows; i++ {
			cols, vals := kr.Row(i)
			for kk, j := range cols {
				d.Set(i, j, vals[kk])
			}
		}
		chol, err := la.NewCholesky(d)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, kr.NRows)
		chol.Solve(fr, x)
		full := make([]float64, m.NumDOF())
		c.Expand(x, dm, full)
		tipVerts := m.VertsWhere(func(p geom.Vec3) bool { return p.X == 6 })
		s := 0.0
		for _, v := range tipVerts {
			s += full[3*v+2]
		}
		return s / float64(len(tipVerts))
	}
	plain := tip(false)
	bbar := tip(true)
	if math.Abs(bbar) < 1.5*math.Abs(plain) {
		t.Fatalf("B-bar should relieve locking: plain %v, bbar %v", plain, bbar)
	}
}

func TestCommitAndPlasticFraction(t *testing.T) {
	m := mesh.StructuredHex(1, 1, 1, 1, 1, 1, func(geom.Vec3) int { return 0 })
	models := []material.Model{material.J2Plasticity{E: 1, Nu: 0.3, SigmaY: 1e-4, H: 0.002}}
	p := NewProblem(m, models, false)
	if p.PlasticFraction(0) != 0 {
		t.Fatal("fresh problem should be elastic")
	}
	// Shear the cube far beyond yield.
	u := make([]float64, m.NumDOF())
	for v, pnt := range m.Coords {
		u[3*v] = 0.05 * pnt.Z
	}
	if err := p.Commit(u); err != nil {
		t.Fatal(err)
	}
	if p.PlasticFraction(0) != 1 {
		t.Fatalf("plastic fraction = %v, want 1", p.PlasticFraction(0))
	}
	if p.PlasticFraction(7) != 0 {
		t.Fatal("unknown material id should report 0")
	}
}

func TestConstraintsHelpers(t *testing.T) {
	c := NewConstraints()
	c.FixVert(2, 1, 2, 3)
	s := c.Scaled(0.5)
	if s.Fixed[6] != 0.5 || s.Fixed[8] != 1.5 {
		t.Fatalf("scaled = %v", s.Fixed)
	}
	dm := c.NewDofMap(12)
	if dm.NumFree() != 9 {
		t.Fatalf("free = %d", dm.NumFree())
	}
	full := make([]float64, 12)
	red := make([]float64, 9)
	for i := range red {
		red[i] = float64(i + 1)
	}
	c.Expand(red, dm, full)
	if full[6] != 1 || full[7] != 2 || full[8] != 3 {
		t.Fatalf("expand lost prescribed values: %v", full)
	}
	back := dm.RestrictVec(full)
	for i := range red {
		if back[i] != red[i] {
			t.Fatal("restrict/expand roundtrip failed")
		}
	}
}

func TestAssembleFlopsCounted(t *testing.T) {
	m := mesh.StructuredHex(2, 2, 2, 1, 1, 1, nil)
	p := NewProblem(m, linearModels(), false)
	_, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	if p.AssembleFlops <= 0 {
		t.Fatal("assembly flops not counted")
	}
}

func TestGalerkinOnFEMatrix(t *testing.T) {
	// Integration smoke test: a Galerkin coarse operator of the FE matrix
	// stays symmetric.
	m, c := cubeWithBottomFixed(2)
	p := NewProblem(m, linearModels(), false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	dm := c.NewDofMap(m.NumDOF())
	f := make([]float64, m.NumDOF())
	kr, _ := c.Reduce(k, f, dm)
	// Injection restriction on every third free dof.
	var rows [][2]int
	for r := 0; r < kr.NRows/3; r++ {
		rows = append(rows, [2]int{r, 3 * r})
	}
	rb := sparse.NewBuilder(len(rows), kr.NRows)
	for _, rc := range rows {
		rb.Add(rc[0], rc[1], 1)
	}
	coarse := sparse.Galerkin(rb.Build(), kr)
	if !coarse.IsSymmetric(1e-10) {
		t.Fatal("Galerkin coarse FE operator not symmetric")
	}
}

func TestParallelAssemblyMatchesSerial(t *testing.T) {
	m := mesh.StructuredHex(4, 4, 4, 1, 1, 1, func(c geom.Vec3) int {
		if c.X < 0.5 {
			return 0
		}
		return 1
	})
	models := material.Database()
	rng := rand.New(rand.NewSource(9))
	u := make([]float64, m.NumDOF())
	for i := range u {
		u[i] = (rng.Float64() - 0.5) * 0.01
	}
	serial := NewProblem(m, models, true)
	kS, fS, err := serial.AssembleTangent(u)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par := NewProblem(m, models, true)
		par.Workers = workers
		kP, fP, err := par.AssembleTangent(u)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if kP.NNZ() != kS.NNZ() {
			t.Fatalf("workers=%d: nnz %d vs %d", workers, kP.NNZ(), kS.NNZ())
		}
		for i := range kS.Val {
			if kS.Val[i] != kP.Val[i] || kS.ColIdx[i] != kP.ColIdx[i] {
				t.Fatalf("workers=%d: matrix differs at entry %d", workers, i)
			}
		}
		for i := range fS {
			if fS[i] != fP[i] {
				t.Fatalf("workers=%d: fint differs at %d", workers, i)
			}
		}
		if par.AssembleFlops != serial.AssembleFlops {
			t.Fatalf("flop counts differ: %d vs %d", par.AssembleFlops, serial.AssembleFlops)
		}
	}
}

func TestParallelCommitMatchesSerial(t *testing.T) {
	m := mesh.StructuredHex(3, 3, 3, 1, 1, 1, nil)
	models := []material.Model{material.J2Plasticity{E: 1, Nu: 0.3, SigmaY: 1e-4, H: 0.002}}
	rng := rand.New(rand.NewSource(12))
	u := make([]float64, m.NumDOF())
	for i := range u {
		u[i] = (rng.Float64() - 0.5) * 0.01
	}
	serial := NewProblem(m, models, true)
	if err := serial.Commit(u); err != nil {
		t.Fatal(err)
	}
	par := NewProblem(m, models, true)
	par.Workers = 5
	if err := par.Commit(u); err != nil {
		t.Fatal(err)
	}
	for e := range serial.States {
		for g := range serial.States[e] {
			if serial.States[e][g] != par.States[e][g] {
				t.Fatalf("state mismatch at elem %d gp %d", e, g)
			}
		}
	}
	if serial.PlasticFraction(0) != par.PlasticFraction(0) {
		t.Fatal("plastic fractions differ")
	}
}
