// Package fem provides the finite element machinery standing in for the
// paper's FEAP layer: Hex8/Tet4 shape functions, Gauss quadrature, B-bar
// (mean dilatation) strain-displacement matrices for near-incompressible
// materials, tangent/residual assembly over a mesh with per-element
// materials and per-integration-point state, and Dirichlet constraint
// reduction.
package fem

import (
	"prometheus/internal/geom"
)

// GaussPoint is one quadrature point in the reference element.
type GaussPoint struct {
	Xi geom.Vec3
	W  float64
}

// HexGauss2 is the 2×2×2 Gauss rule for Hex8 elements.
var HexGauss2 = func() []GaussPoint {
	g := 1.0 / 1.7320508075688772
	var pts []GaussPoint
	for _, x := range []float64{-g, g} {
		for _, y := range []float64{-g, g} {
			for _, z := range []float64{-g, g} {
				pts = append(pts, GaussPoint{Xi: geom.Vec3{X: x, Y: y, Z: z}, W: 1})
			}
		}
	}
	return pts
}()

// TetGauss1 is the single-point rule for Tet4 elements (exact for linears).
var TetGauss1 = []GaussPoint{{Xi: geom.Vec3{X: 0.25, Y: 0.25, Z: 0.25}, W: 1.0 / 6.0}}

// hexNodes are the reference coordinates of the Hex8 nodes, matching the
// mesh package's connectivity order.
var hexNodes = [8]geom.Vec3{
	{X: -1, Y: -1, Z: -1}, {X: 1, Y: -1, Z: -1}, {X: 1, Y: 1, Z: -1}, {X: -1, Y: 1, Z: -1},
	{X: -1, Y: -1, Z: 1}, {X: 1, Y: -1, Z: 1}, {X: 1, Y: 1, Z: 1}, {X: -1, Y: 1, Z: 1},
}

// HexShape evaluates the Hex8 trilinear shape functions and their
// reference-coordinate gradients at xi.
func HexShape(xi geom.Vec3) (n [8]float64, dn [8]geom.Vec3) {
	for a := 0; a < 8; a++ {
		r := hexNodes[a]
		fx := 1 + r.X*xi.X
		fy := 1 + r.Y*xi.Y
		fz := 1 + r.Z*xi.Z
		n[a] = 0.125 * fx * fy * fz
		dn[a] = geom.Vec3{
			X: 0.125 * r.X * fy * fz,
			Y: 0.125 * fx * r.Y * fz,
			Z: 0.125 * fx * fy * r.Z,
		}
	}
	return
}

// TetShape evaluates the Tet4 linear shape functions and gradients at the
// reference point (barycentric-style: N0 = 1-x-y-z, N1 = x, N2 = y, N3 = z).
func TetShape(xi geom.Vec3) (n [4]float64, dn [4]geom.Vec3) {
	n[0] = 1 - xi.X - xi.Y - xi.Z
	n[1] = xi.X
	n[2] = xi.Y
	n[3] = xi.Z
	dn[0] = geom.Vec3{X: -1, Y: -1, Z: -1}
	dn[1] = geom.Vec3{X: 1}
	dn[2] = geom.Vec3{Y: 1}
	dn[3] = geom.Vec3{Z: 1}
	return
}

// jacobian computes the 3×3 Jacobian dx/dxi from nodal coordinates and
// reference gradients, returning its determinant and the physical gradients
// dN/dx (via J^{-T} dN/dxi).
func jacobian(coords []geom.Vec3, dn []geom.Vec3) (detJ float64, dndx []geom.Vec3) {
	var j [3][3]float64
	for a := range coords {
		c := coords[a]
		g := dn[a]
		j[0][0] += c.X * g.X
		j[0][1] += c.X * g.Y
		j[0][2] += c.X * g.Z
		j[1][0] += c.Y * g.X
		j[1][1] += c.Y * g.Y
		j[1][2] += c.Y * g.Z
		j[2][0] += c.Z * g.X
		j[2][1] += c.Z * g.Y
		j[2][2] += c.Z * g.Z
	}
	detJ = j[0][0]*(j[1][1]*j[2][2]-j[1][2]*j[2][1]) -
		j[0][1]*(j[1][0]*j[2][2]-j[1][2]*j[2][0]) +
		j[0][2]*(j[1][0]*j[2][1]-j[1][1]*j[2][0])
	if detJ == 0 {
		return 0, nil
	}
	inv := 1 / detJ
	var ji [3][3]float64 // inverse of J
	ji[0][0] = (j[1][1]*j[2][2] - j[1][2]*j[2][1]) * inv
	ji[0][1] = (j[0][2]*j[2][1] - j[0][1]*j[2][2]) * inv
	ji[0][2] = (j[0][1]*j[1][2] - j[0][2]*j[1][1]) * inv
	ji[1][0] = (j[1][2]*j[2][0] - j[1][0]*j[2][2]) * inv
	ji[1][1] = (j[0][0]*j[2][2] - j[0][2]*j[2][0]) * inv
	ji[1][2] = (j[0][2]*j[1][0] - j[0][0]*j[1][2]) * inv
	ji[2][0] = (j[1][0]*j[2][1] - j[1][1]*j[2][0]) * inv
	ji[2][1] = (j[0][1]*j[2][0] - j[0][0]*j[2][1]) * inv
	ji[2][2] = (j[0][0]*j[1][1] - j[0][1]*j[1][0]) * inv
	// dN/dx = J^{-T} dN/dxi.
	dndx = make([]geom.Vec3, len(dn))
	for a := range dn {
		g := dn[a]
		dndx[a] = geom.Vec3{
			X: ji[0][0]*g.X + ji[1][0]*g.Y + ji[2][0]*g.Z,
			Y: ji[0][1]*g.X + ji[1][1]*g.Y + ji[2][1]*g.Z,
			Z: ji[0][2]*g.X + ji[1][2]*g.Y + ji[2][2]*g.Z,
		}
	}
	return detJ, dndx
}

// HexGauss3 is the 3×3×3 Gauss rule used for Hex20 elements.
var HexGauss3 = func() []GaussPoint {
	const g = 0.7745966692414834 // sqrt(3/5)
	abscissae := []float64{-g, 0, g}
	weights := []float64{5.0 / 9, 8.0 / 9, 5.0 / 9}
	var pts []GaussPoint
	for i, x := range abscissae {
		for j, y := range abscissae {
			for k, z := range abscissae {
				pts = append(pts, GaussPoint{
					Xi: geom.Vec3{X: x, Y: y, Z: z},
					W:  weights[i] * weights[j] * weights[k],
				})
			}
		}
	}
	return pts
}()

// hex20Mid gives, for each midside node 8..19, the corner pair it bisects
// (matching the mesh package's Hex20 convention).
var hex20Mid = [12][2]int{
	{0, 1}, {1, 2}, {2, 3}, {3, 0},
	{4, 5}, {5, 6}, {6, 7}, {7, 4},
	{0, 4}, {1, 5}, {2, 6}, {3, 7},
}

// Hex20Shape evaluates the 20-node serendipity shape functions and their
// reference gradients at xi.
func Hex20Shape(xi geom.Vec3) (n [20]float64, dn [20]geom.Vec3) {
	// Corner nodes: N = 1/8 (1+ξξi)(1+ηηi)(1+ζζi)(ξξi+ηηi+ζζi-2).
	for a := 0; a < 8; a++ {
		r := hexNodes[a]
		fx := 1 + r.X*xi.X
		fy := 1 + r.Y*xi.Y
		fz := 1 + r.Z*xi.Z
		s := r.X*xi.X + r.Y*xi.Y + r.Z*xi.Z - 2
		n[a] = 0.125 * fx * fy * fz * s
		dn[a] = geom.Vec3{
			X: 0.125 * r.X * fy * fz * (s + fx),
			Y: 0.125 * r.Y * fx * fz * (s + fy),
			Z: 0.125 * r.Z * fx * fy * (s + fz),
		}
	}
	// Midside nodes: the zero reference coordinate gets the (1-q²) factor.
	for e, pair := range hex20Mid {
		a := 8 + e
		r := hexNodes[pair[0]].Add(hexNodes[pair[1]]).Scale(0.5) // one coord is 0
		switch {
		case r.X == 0:
			fy := 1 + r.Y*xi.Y
			fz := 1 + r.Z*xi.Z
			q := 1 - xi.X*xi.X
			n[a] = 0.25 * q * fy * fz
			dn[a] = geom.Vec3{
				X: -0.5 * xi.X * fy * fz,
				Y: 0.25 * q * r.Y * fz,
				Z: 0.25 * q * fy * r.Z,
			}
		case r.Y == 0:
			fx := 1 + r.X*xi.X
			fz := 1 + r.Z*xi.Z
			q := 1 - xi.Y*xi.Y
			n[a] = 0.25 * q * fx * fz
			dn[a] = geom.Vec3{
				X: 0.25 * q * r.X * fz,
				Y: -0.5 * xi.Y * fx * fz,
				Z: 0.25 * q * fx * r.Z,
			}
		default: // r.Z == 0
			fx := 1 + r.X*xi.X
			fy := 1 + r.Y*xi.Y
			q := 1 - xi.Z*xi.Z
			n[a] = 0.25 * q * fx * fy
			dn[a] = geom.Vec3{
				X: 0.25 * q * r.X * fy,
				Y: 0.25 * q * fx * r.Y,
				Z: -0.5 * xi.Z * fx * fy,
			}
		}
	}
	return
}
