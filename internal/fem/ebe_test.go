package fem

import (
	"math"
	"math/rand"
	"testing"

	"prometheus/internal/geom"
	"prometheus/internal/mesh"
	"prometheus/internal/pool"
	"prometheus/internal/sparse"
)

// ebeFixture is one randomized problem with both operator forms: the
// matrix-free EBE operator and its assembled reduced-CSR oracle.
type ebeFixture struct {
	op   *EBEOperator
	kred *sparse.CSR
	fred []float64 // oracle reduced rhs from Reduce (f = 0 load)
	dm   *DofMap
	n    int
}

// buildEBEFixture constructs a jittered hex or tet mesh with random
// Dirichlet values, assembles the reduced CSR through the existing
// pipeline and builds the matrix-free operator from the same problem.
func buildEBEFixture(t testing.TB, seed int64) *ebeFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(2)
	m := mesh.StructuredHex(n, n, n, 1, 1, 1, nil)
	if seed%2 == 0 {
		m = mesh.HexToTets(m)
	}
	for i := range m.Coords {
		m.Coords[i].X += 0.08 * (rng.Float64() - 0.5) / float64(n)
		m.Coords[i].Y += 0.08 * (rng.Float64() - 0.5) / float64(n)
		m.Coords[i].Z += 0.08 * (rng.Float64() - 0.5) / float64(n)
	}
	c := NewConstraints()
	for _, v := range m.VertsWhere(func(p geom.Vec3) bool { return p.Z == 0 }) {
		c.FixVert(v, 0.1*rng.Float64(), 0, -0.05*rng.Float64())
	}
	// A few extra random fixed vertices exercise non-boundary constraints.
	for i := 0; i < 2; i++ {
		c.FixVert(rng.Intn(m.NumVerts()), rng.Float64()-0.5, 0, 0)
	}
	p := NewProblem(m, linearModels(), false)
	dm := c.NewDofMap(m.NumDOF())
	u := make([]float64, m.NumDOF())
	k, _, err := p.AssembleTangent(u)
	if err != nil {
		t.Fatal(err)
	}
	f := make([]float64, m.NumDOF())
	kred, fred := c.Reduce(k, f, dm)
	op, err := NewEBEOperator(p, u, c, dm)
	if err != nil {
		t.Fatal(err)
	}
	if op.Rows() != kred.NRows {
		t.Fatalf("ebe has %d rows, assembled %d", op.Rows(), kred.NRows)
	}
	return &ebeFixture{op: op, kred: kred, fred: fred, dm: dm, n: kred.NRows}
}

// checkEBEParity compares the matrix-free and assembled products on one
// random vector. The bound is row-scaled: both operators sum identical
// per-element contributions in different association, so the difference
// is a few ULPs of the sum of contribution magnitudes.
func checkEBEParity(t *testing.T, fx *ebeFixture, rng *rand.Rand) {
	t.Helper()
	x := make([]float64, fx.n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ye := make([]float64, fx.n)
	ya := make([]float64, fx.n)
	fx.op.MulVec(x, ye)
	fx.kred.MulVec(x, ya)
	for i := 0; i < fx.n; i++ {
		scale := 0.0
		cols, vals := fx.kred.Row(i)
		for k, j := range cols {
			scale += math.Abs(vals[k] * x[j])
		}
		tol := 1e-12*scale + 1e-300
		if d := math.Abs(ye[i] - ya[i]); d > tol {
			t.Fatalf("row %d: ebe %v vs assembled %v (diff %g > tol %g)", i, ye[i], ya[i], d, tol)
		}
	}
	// Diagonal parity under the same row-scaled bound.
	de := fx.op.Diag()
	da := fx.kred.Diag()
	for i := range de {
		if d := math.Abs(de[i] - da[i]); d > 1e-12*math.Abs(da[i])+1e-300 {
			t.Fatalf("diag %d: ebe %v vs assembled %v", i, de[i], da[i])
		}
	}
	// Reduced right-hand side parity: RestrictVec(f=0) - K_fc·u_c against
	// Reduce's fred.
	cf := fx.op.ConstraintForce()
	for i := range cf {
		if d := math.Abs(-cf[i] - fx.fred[i]); d > 1e-12*math.Abs(fx.fred[i])+1e-10 {
			t.Fatalf("rhs %d: ebe %v vs assembled %v", i, -cf[i], fx.fred[i])
		}
	}
}

func TestEBEParity(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		fx := buildEBEFixture(t, seed)
		checkEBEParity(t, fx, rand.New(rand.NewSource(seed+100)))
	}
}

// FuzzEBEParity fuzzes the mesh/constraint seed: whatever geometry and
// Dirichlet set falls out, the matrix-free product must match the
// assembled reduced CSR within the row-scaled ULP bound.
func FuzzEBEParity(f *testing.F) {
	for _, s := range []int64{1, 2, 17, 123} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if seed < 0 {
			seed = -seed
		}
		fx := buildEBEFixture(t, seed)
		checkEBEParity(t, fx, rand.New(rand.NewSource(seed^0x5eed)))
	})
}

// TestEBEBitwisePaths locks in the structural-determinism claim: the
// colored serial scatter, the row-gather form (in arbitrary chunkings),
// the pool-parallel colored dispatch at every worker count, and a second
// run of each all produce bitwise identical results.
func TestEBEBitwisePaths(t *testing.T) {
	fx := buildEBEFixture(t, 3)
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, fx.n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := make([]float64, fx.n)
	fx.op.MulVec(x, ref)

	again := make([]float64, fx.n)
	fx.op.MulVec(x, again)
	for i := range ref {
		if ref[i] != again[i] {
			t.Fatalf("MulVec not run-to-run bitwise deterministic at %d", i)
		}
	}

	gather := make([]float64, fx.n)
	lo := 0
	for lo < fx.n {
		hi := lo + 1 + rng.Intn(7)
		if hi > fx.n {
			hi = fx.n
		}
		fx.op.MulVecRange(x, gather, lo, hi)
		lo = hi
	}
	for i := range ref {
		if ref[i] != gather[i] {
			t.Fatalf("MulVecRange diverges from MulVec at %d: %v vs %v", i, gather[i], ref[i])
		}
	}

	for nw := 1; nw <= 4; nw++ {
		p := pool.New(nw)
		par := make([]float64, fx.n)
		fx.op.MulVecParallel(p, x, par)
		for i := range ref {
			if ref[i] != par[i] {
				t.Fatalf("MulVecParallel(%d workers) diverges at %d: %v vs %v", nw, i, par[i], ref[i])
			}
		}
		p.Close()
	}

	// Residual consistency: r = b - A·x through the gather path.
	b := make([]float64, fx.n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	r := make([]float64, fx.n)
	fx.op.Residual(b, x, r)
	for i := range r {
		if want := b[i] - ref[i]; r[i] != want {
			t.Fatalf("Residual diverges at %d: %v vs %v", i, r[i], want)
		}
	}
}

// TestEBEColoringDisjoint verifies the coloring invariant the parallel
// scatter relies on: within each color, no reduced dof appears in two
// elements' write sets.
func TestEBEColoringDisjoint(t *testing.T) {
	fx := buildEBEFixture(t, 5)
	a := fx.op
	for c := 0; c < a.NumColors(); c++ {
		seen := make(map[int32]int32)
		for p := a.colorPtr[c]; p < a.colorPtr[c+1]; p++ {
			e := a.order[p]
			for _, d := range a.ws[a.wsPtr[e]:a.wsPtr[e+1]] {
				if prev, ok := seen[d]; ok {
					t.Fatalf("color %d: dof %d written by elements %d and %d", c, d, prev, e)
				}
				seen[d] = e
			}
		}
	}
}

// TestEBEApplyZeroAlloc locks in the allocation-free apply guarantee for
// the serial scatter, the row-gather and the pool-parallel paths (all
// element scratch lives on the kernel stack; the per-color batch
// interface values are precomputed at construction).
func TestEBEApplyZeroAlloc(t *testing.T) {
	fx := buildEBEFixture(t, 4)
	x := make([]float64, fx.n)
	y := make([]float64, fx.n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	if got := testing.AllocsPerRun(10, func() { fx.op.MulVec(x, y) }); got != 0 {
		t.Errorf("MulVec allocates %.1f per call, want 0", got)
	}
	if got := testing.AllocsPerRun(10, func() { fx.op.MulVecRange(x, y, 0, fx.n) }); got != 0 {
		t.Errorf("MulVecRange allocates %.1f per call, want 0", got)
	}
	if got := testing.AllocsPerRun(10, func() { fx.op.Residual(y, x, y) }); got != 0 {
		t.Errorf("Residual allocates %.1f per call, want 0", got)
	}
	p := pool.New(2)
	defer p.Close()
	if got := testing.AllocsPerRun(10, func() { fx.op.MulVecParallel(p, x, y) }); got != 0 {
		t.Errorf("MulVecParallel allocates %.1f per call, want 0", got)
	}
}

// TestEBEGalerkinParity compares the element-assembled Galerkin coarse
// operator against the sparse triple product R·K·Rᵀ of the assembled
// oracle, and verifies it is exactly symmetric.
func TestEBEGalerkinParity(t *testing.T) {
	fx := buildEBEFixture(t, 7)
	rng := rand.New(rand.NewSource(7))
	// A plausible restriction: each fine dof contributes to one or two of
	// ncoarse dofs with positive weights.
	ncoarse := fx.n/4 + 1
	rb := sparse.NewBuilder(ncoarse, fx.n)
	for j := 0; j < fx.n; j++ {
		c0 := j % ncoarse
		rb.Add(c0, j, 0.5+0.5*rng.Float64())
		if rng.Intn(2) == 0 {
			rb.Add((c0+1)%ncoarse, j, 0.25*rng.Float64())
		}
	}
	r := rb.Build()

	got := fx.op.AssembleGalerkin(r)
	want := sparse.Galerkin(r, fx.kred)
	if got.NRows != want.NRows || got.NCols != want.NCols {
		t.Fatalf("shape %dx%d vs %dx%d", got.NRows, got.NCols, want.NRows, want.NCols)
	}
	for i := 0; i < want.NRows; i++ {
		scale := 0.0
		cols, vals := want.Row(i)
		rowWant := make(map[int]float64, len(cols))
		for k, j := range cols {
			rowWant[j] = vals[k]
			scale += math.Abs(vals[k])
		}
		tol := 1e-11*scale + 1e-300
		gcols, gvals := got.Row(i)
		gotRow := make(map[int]float64, len(gcols))
		for k, j := range gcols {
			gotRow[j] = gvals[k]
		}
		for j, wv := range rowWant {
			if d := math.Abs(gotRow[j] - wv); d > tol {
				t.Fatalf("coarse (%d,%d): %v vs %v", i, j, gotRow[j], wv)
			}
		}
		for j, gv := range gotRow {
			if _, ok := rowWant[j]; !ok && math.Abs(gv) > tol {
				t.Fatalf("coarse (%d,%d): spurious %v", i, j, gv)
			}
		}
	}
	if !got.IsSymmetric(0) {
		t.Fatal("element-assembled Galerkin operator not exactly symmetric")
	}
}

// TestEBENodeKernels covers the distributed-apply surface: MulVecNodes
// must reproduce the serial product on any node subset, and NodeAdjacency
// must contain every coupling the gather structure uses.
func TestEBENodeKernels(t *testing.T) {
	fx := buildEBEFixture(t, 9)
	a := fx.op
	if a.DiagBlocks() == nil {
		t.Skip("fixture not node-aligned")
	}
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, fx.n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := make([]float64, fx.n)
	a.MulVec(x, ref)
	y := make([]float64, fx.n)
	var odd []int
	for nb := 1; nb < a.NumNodes(); nb += 2 {
		odd = append(odd, nb)
	}
	a.MulVecNodes(x, y, odd)
	for _, nb := range odd {
		for i := 0; i < 3; i++ {
			if y[3*nb+i] != ref[3*nb+i] {
				t.Fatalf("MulVecNodes diverges at node %d dof %d", nb, i)
			}
		}
	}
	adj, err := a.NodeAdjacency()
	if err != nil {
		t.Fatal(err)
	}
	if len(adj) != a.NumNodes() {
		t.Fatalf("adjacency has %d nodes, want %d", len(adj), a.NumNodes())
	}
	for nb, nbrs := range adj {
		found := false
		for _, v := range nbrs {
			if v == nb {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("node %d missing self-coupling", nb)
		}
	}
}

// TestEBEStorageAccounting sanity-checks the byte accounting: dominated
// by the packed stiffnesses and strictly positive.
func TestEBEStorageAccounting(t *testing.T) {
	fx := buildEBEFixture(t, 11)
	b := fx.op.StorageBytes()
	packed := int64(8 * fx.op.ne * fx.op.packLen)
	if b < packed {
		t.Fatalf("StorageBytes %d below packed stiffness bytes %d", b, packed)
	}
	if fx.op.StorageLabel() != "mf" {
		t.Fatalf("label %q", fx.op.StorageLabel())
	}
	if fx.op.NNZ() != fx.op.ne*fx.op.packLen {
		t.Fatalf("NNZ %d", fx.op.NNZ())
	}
}
