package fem

import (
	"fmt"
	"sync"

	"prometheus/internal/geom"
	"prometheus/internal/material"
	"prometheus/internal/mesh"
	"prometheus/internal/sparse"
)

// Problem couples a mesh with its materials and integration-point states.
// It stands in for FEAP: it can compute the element stiffness matrices,
// assemble the global tangent and internal force at a displacement state,
// and commit the material history after a converged load step.
type Problem struct {
	M      *mesh.Mesh
	Models []material.Model   // indexed by element material id
	States [][]material.State // committed state per element per Gauss point
	BBar   bool               // mean-dilatation treatment of the volumetric strain
	// Workers > 1 integrates elements concurrently (goroutines); results
	// are accumulated in element order in fixed-size chunks, so the
	// assembled matrix is bit-for-bit identical to the serial one.
	Workers int

	// AssembleFlops accumulates an estimate of the floating point work in
	// element integration (the paper's "fine grid creation (FEAP)" phase).
	AssembleFlops int64
}

// NewProblem allocates a Problem with fresh (zero) material states.
func NewProblem(m *mesh.Mesh, models []material.Model, bbar bool) *Problem {
	p := &Problem{M: m, Models: models, BBar: bbar}
	var ngp int
	switch m.Type {
	case mesh.Tet4:
		ngp = len(TetGauss1)
	case mesh.Hex20:
		ngp = len(HexGauss3)
	default:
		ngp = len(HexGauss2)
	}
	p.States = make([][]material.State, m.NumElems())
	for e := range p.States {
		p.States[e] = make([]material.State, ngp)
	}
	return p
}

// gauss returns the quadrature rule for the mesh's element type.
func (p *Problem) gauss() []GaussPoint {
	switch p.M.Type {
	case mesh.Tet4:
		return TetGauss1
	case mesh.Hex20:
		return HexGauss3
	default:
		return HexGauss2
	}
}

// shapeAt evaluates shape gradients for element type at a Gauss point.
func (p *Problem) shapeAt(xi geom.Vec3) []geom.Vec3 {
	switch p.M.Type {
	case mesh.Tet4:
		_, dn := TetShape(xi)
		return dn[:]
	case mesh.Hex20:
		_, dn := Hex20Shape(xi)
		return dn[:]
	default:
		_, dn := HexShape(xi)
		return dn[:]
	}
}

// elementData holds per-Gauss-point geometry for one element.
type elementData struct {
	detJ []float64
	dndx [][]geom.Vec3
	vol  float64
	// bbar holds the volume-averaged gradients (B-bar correction).
	bbar []geom.Vec3
}

// geometry integrates the element Jacobians (and the B-bar means).
func (p *Problem) geometry(e int) (*elementData, error) {
	conn := p.M.Elems[e]
	coords := make([]geom.Vec3, len(conn))
	for a, v := range conn {
		coords[a] = p.M.Coords[v]
	}
	gps := p.gauss()
	ed := &elementData{
		detJ: make([]float64, len(gps)),
		dndx: make([][]geom.Vec3, len(gps)),
		bbar: make([]geom.Vec3, len(conn)),
	}
	for g, gp := range gps {
		dn := p.shapeAt(gp.Xi)
		detJ, dndx := jacobian(coords, dn)
		if detJ <= 0 {
			return nil, fmt.Errorf("fem: element %d has non-positive Jacobian %g at gp %d", e, detJ, g)
		}
		ed.detJ[g] = detJ
		ed.dndx[g] = dndx
		w := gp.W * detJ
		ed.vol += w
		for a := range conn {
			ed.bbar[a] = ed.bbar[a].Add(dndx[a].Scale(w))
		}
	}
	for a := range conn {
		ed.bbar[a] = ed.bbar[a].Scale(1 / ed.vol)
	}
	return ed, nil
}

// strainAt computes the (possibly B-bar) strain at Gauss point g of element
// e given the global displacement u.
func (p *Problem) strainAt(e int, ed *elementData, g int, u []float64) material.Voigt {
	conn := p.M.Elems[e]
	var eps material.Voigt
	for a, v := range conn {
		gx := ed.dndx[g][a]
		ux, uy, uz := u[3*v], u[3*v+1], u[3*v+2]
		eps[0] += gx.X * ux
		eps[1] += gx.Y * uy
		eps[2] += gx.Z * uz
		eps[3] += gx.Y*ux + gx.X*uy
		eps[4] += gx.Z*uy + gx.Y*uz
		eps[5] += gx.Z*ux + gx.X*uz
	}
	if p.BBar {
		// Replace the volumetric strain by its element mean.
		div := eps[0] + eps[1] + eps[2]
		var divBar float64
		for a, v := range conn {
			gb := ed.bbar[a]
			divBar += gb.X*u[3*v] + gb.Y*u[3*v+1] + gb.Z*u[3*v+2]
		}
		c := (divBar - div) / 3
		eps[0] += c
		eps[1] += c
		eps[2] += c
	}
	return eps
}

// bMatrix fills the 6×(3n) strain-displacement matrix at Gauss point g,
// with the B-bar volumetric correction when enabled.
func (p *Problem) bMatrix(ed *elementData, g, nNodes int, b [][]float64) {
	for i := range b {
		for j := range b[i] {
			b[i][j] = 0
		}
	}
	for a := 0; a < nNodes; a++ {
		gx := ed.dndx[g][a]
		c := 3 * a
		b[0][c] = gx.X
		b[1][c+1] = gx.Y
		b[2][c+2] = gx.Z
		b[3][c] = gx.Y
		b[3][c+1] = gx.X
		b[4][c+1] = gx.Z
		b[4][c+2] = gx.Y
		b[5][c] = gx.Z
		b[5][c+2] = gx.X
	}
	if p.BBar {
		for a := 0; a < nNodes; a++ {
			gx := ed.dndx[g][a]
			gb := ed.bbar[a]
			d := [3]float64{
				(gb.X - gx.X) / 3,
				(gb.Y - gx.Y) / 3,
				(gb.Z - gx.Z) / 3,
			}
			for row := 0; row < 3; row++ {
				b[row][3*a] += d[0]
				b[row][3*a+1] += d[1]
				b[row][3*a+2] += d[2]
			}
		}
	}
}

// elemScratch holds the per-worker buffers of element integration.
type elemScratch struct {
	b, db [][]float64
}

func newElemScratch(ndof int) *elemScratch {
	s := &elemScratch{b: make([][]float64, 6), db: make([][]float64, 6)}
	for i := range s.b {
		s.b[i] = make([]float64, ndof)
		s.db[i] = make([]float64, ndof)
	}
	return s
}

// integrateElement computes the element tangent (flat, row-major ndof×ndof)
// and internal force of element e at displacement u, returning the flop
// estimate.
func (p *Problem) integrateElement(e int, u []float64, scr *elemScratch, ke, fe []float64) (int64, error) {
	ed, err := p.geometry(e)
	if err != nil {
		return 0, err
	}
	nNodes := p.M.Type.NodesPerElem()
	ndof := 3 * nNodes
	model := p.Models[p.M.Mat[e]]
	for i := range fe {
		fe[i] = 0
	}
	for i := range ke {
		ke[i] = 0
	}
	var flops int64
	for g, gp := range p.gauss() {
		eps := p.strainAt(e, ed, g, u)
		sig, d, _ := model.Update(p.States[e][g], eps)
		p.bMatrix(ed, g, nNodes, scr.b)
		w := gp.W * ed.detJ[g]
		// db = D·B.
		for i := 0; i < 6; i++ {
			for j := 0; j < ndof; j++ {
				s := 0.0
				for k := 0; k < 6; k++ {
					s += d[i][k] * scr.b[k][j]
				}
				scr.db[i][j] = s
			}
		}
		// ke += w·Bᵀ·(D·B); fe += w·Bᵀ·σ.
		for i := 0; i < ndof; i++ {
			for k := 0; k < 6; k++ {
				bki := scr.b[k][i]
				if bki == 0 {
					continue
				}
				fe[i] += w * bki * sig[k]
				row := scr.db[k]
				krow := ke[i*ndof : (i+1)*ndof]
				for j := 0; j < ndof; j++ {
					krow[j] += w * bki * row[j]
				}
			}
		}
		flops += int64(6*ndof*6*2 + ndof*6*(ndof+1)*2)
	}
	return flops, nil
}

// AssembleTangent computes the global consistent tangent K(u) and internal
// force vector fint(u) from the committed material states. Both use the
// full 3·NumVerts dof numbering; apply Constraints to reduce. With
// Workers > 1 element integration runs concurrently; the result is
// identical to the serial assembly. The scalar matrix is the expansion of
// the blocked assembly — same pattern (elements touch all 9 entries of
// every node pair) and bitwise-identical values.
func (p *Problem) AssembleTangent(u []float64) (*sparse.CSR, []float64, error) {
	k, fint, err := p.AssembleBlockTangent(u)
	if err != nil {
		return nil, nil, err
	}
	return k.ToCSR(), fint, nil
}

// AssembleBlockTangent is the blocked form of AssembleTangent: the element
// loop emits one dense 3x3 block per node pair (BlockBuilder.AddBlock)
// instead of nine scalar triplets, and the tangent comes back in BSR — the
// paper's BAIJ storage — ready for the blocked solver stack without a
// conversion pass.
func (p *Problem) AssembleBlockTangent(u []float64) (*sparse.BSR, []float64, error) {
	n := p.M.NumDOF()
	if len(u) != n {
		return nil, nil, fmt.Errorf("fem: u has %d entries, want %d", len(u), n)
	}
	nv := p.M.NumVerts()
	kb := sparse.NewBlockBuilder(nv, nv, 3)
	fint := make([]float64, n)
	ndof := 3 * p.M.Type.NodesPerElem()

	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	nElems := p.M.NumElems()
	const chunk = 256
	// Chunk buffers: ke/fe per element slot, filled concurrently, drained
	// in element order.
	kes := make([][]float64, chunk)
	fes := make([][]float64, chunk)
	for i := range kes {
		kes[i] = make([]float64, ndof*ndof)
		fes[i] = make([]float64, ndof)
	}
	scratch := make([]*elemScratch, workers)
	for w := range scratch {
		scratch[w] = newElemScratch(ndof)
	}
	flopsPerWorker := make([]int64, workers)
	errPerWorker := make([]error, workers)
	var blk [9]float64 // staging for one 3x3 node-pair block

	for e0 := 0; e0 < nElems; e0 += chunk {
		e1 := e0 + chunk
		if e1 > nElems {
			e1 = nElems
		}
		if workers == 1 {
			for e := e0; e < e1; e++ {
				fl, err := p.integrateElement(e, u, scratch[0], kes[e-e0], fes[e-e0])
				if err != nil {
					return nil, nil, err
				}
				flopsPerWorker[0] += fl
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w, e0, e1 int) {
					defer wg.Done()
					for e := e0 + w; e < e1; e += workers {
						fl, err := p.integrateElement(e, u, scratch[w], kes[e-e0], fes[e-e0])
						if err != nil {
							errPerWorker[w] = err
							return
						}
						flopsPerWorker[w] += fl
					}
				}(w, e0, e1)
			}
			wg.Wait()
			for _, err := range errPerWorker {
				if err != nil {
					return nil, nil, err
				}
			}
		}
		// Deterministic accumulation in element order. Each node pair
		// contributes one dense 3x3 block; AddBlock accumulates entry-wise
		// in the same element sequence as the old scalar triplets, so the
		// expanded matrix is bitwise identical.
		for e := e0; e < e1; e++ {
			conn := p.M.Elems[e]
			ke := kes[e-e0]
			fe := fes[e-e0]
			for a, va := range conn {
				for i := 0; i < 3; i++ {
					fint[3*va+i] += fe[3*a+i]
				}
				for bn, vb := range conn {
					for i := 0; i < 3; i++ {
						li := 3*a + i
						blk[3*i+0] = ke[li*ndof+3*bn+0]
						blk[3*i+1] = ke[li*ndof+3*bn+1]
						blk[3*i+2] = ke[li*ndof+3*bn+2]
					}
					kb.AddBlock(va, vb, blk[:])
				}
			}
		}
	}
	for _, fl := range flopsPerWorker {
		p.AssembleFlops += fl
	}
	return kb.Build(), fint, nil
}

// Commit recomputes the material response at u and stores the new history
// (called once per converged load step). Elements are independent, so with
// Workers > 1 the update runs concurrently.
func (p *Problem) Commit(u []float64) error {
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for e := w; e < p.M.NumElems(); e += workers {
				ed, err := p.geometry(e)
				if err != nil {
					errs[w] = err
					return
				}
				model := p.Models[p.M.Mat[e]]
				for g := range p.gauss() {
					eps := p.strainAt(e, ed, g, u)
					_, _, next := model.Update(p.States[e][g], eps)
					p.States[e][g] = next
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PlasticFraction returns the fraction of integration points currently in
// the plastic state among elements with the given material id (Figure 13
// left reports this for the "hard" shells).
func (p *Problem) PlasticFraction(matID int) float64 {
	total, plastic := 0, 0
	for e := range p.M.Elems {
		if p.M.Mat[e] != matID {
			continue
		}
		for _, s := range p.States[e] {
			total++
			if s.Plastic {
				plastic++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(plastic) / float64(total)
}
