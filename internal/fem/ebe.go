package fem

import (
	"fmt"
	"sort"
	"sync"

	"prometheus/internal/mesh"
	"prometheus/internal/pool"
	"prometheus/internal/sparse"
)

// maxElemDOF bounds the element dof count across the supported element
// types (hex20: 20 nodes x 3 dofs), sizing the fixed stack buffers of the
// apply kernels so every path is allocation-free and goroutine-safe.
const maxElemDOF = 60

// EBEOperator is the assembly-free element-by-element form of the reduced
// tangent stiffness: sparse.Operator implemented as gather -> per-element
// stiffness apply -> scatter, with no assembled fine-grid matrix anywhere.
// Each element's stiffness is integrated once at construction and stored
// as its packed upper triangle (the element tangent is symmetric, so the
// packed form halves the dominant storage term and makes the operator
// exactly symmetric), which is what puts the matrix-free fine level below
// assembled CSR in bytes/dof.
//
// Determinism is structural. Elements are greedily colored so that no two
// elements of a color share a vertex; the serial apply walks the elements
// in that same color-major order, so within a color each output index is
// written by exactly one element and the parallel colored dispatch
// (MulVecParallel over pool.DispatchIndexed) accumulates every output in
// the identical order at any worker count — bitwise equal to the serial
// product. The row-gather form used by MulVecRange and Residual replays
// each row's contributions in the same colored order with the same
// left-fold association, so all three paths agree bit for bit.
//
// Capabilities: BlockDiagonaler (3x3 nodal diagonal blocks when the
// reduced numbering is node-aligned), GalerkinAssembler (the first coarse
// operator assembled from element contributions), StorageLabeler and
// ByteAccounter. Deliberately absent: RowScanner and Sweeper — entry
// lookups and ordered sweeps are what this operator exists to avoid, and
// consumers fall back to apply-only algorithms through the capability
// seam.
type EBEOperator struct {
	n       int // reduced (free) dimension
	ndof    int // dofs per element
	ne      int
	packLen int // ndof*(ndof+1)/2 packed upper-triangle length

	// kp is the packed symmetric element stiffness per element id; dofs
	// maps each element's local dofs to reduced dofs (-1 = constrained);
	// fullDofs keeps the full numbering so constrained columns can look
	// up their prescribed values.
	kp       []float64
	dofs     []int32
	fullDofs []int32

	// order lists element ids color-major (ascending id within a color);
	// colorPtr bounds each color's span in order.
	order    []int32
	colorPtr []int

	// ws/wsPtr are the per-element write sets (free reduced dofs, local
	// order), claimed in the ownership table by the parallel dispatch.
	ws    []int32
	wsPtr []int32

	// Row-gather structure in colored order: row r's contributions are
	// (pairElem[p], pairLoc[p]) for p in [rowPtr[r], rowPtr[r+1]).
	rowPtr   []int32
	pairElem []int32
	pairLoc  []uint8

	// diag is the assembled diagonal; diagBlocks the assembled 3x3 nodal
	// diagonal blocks (nil when the reduced numbering is not
	// node-aligned); cf the constraint force K_fc·u_c accumulated at
	// construction.
	diag       []float64
	diagBlocks []float64
	cf         []float64

	// batches holds one IndexedKernel per color, converted to interface
	// values once at construction so a parallel apply allocates nothing.
	batches []pool.IndexedKernel
}

// NewEBEOperator integrates every element tangent of p at displacement u
// and returns the matrix-free operator over the free dofs of dm. cons
// supplies the prescribed values for the constraint-force vector (the
// K_fc·u_c term the assembled pipeline folds into the reduced right-hand
// side). The assembled reduced CSR from Constraints.Reduce is the parity
// oracle: both operators sum identical per-element contributions, so
// their products agree to a few ULPs per row (summation association and
// the exact symmetrization of the packed stiffness differ), while the
// EBE operator itself is run-to-run bitwise deterministic.
func NewEBEOperator(p *Problem, u []float64, cons *Constraints, dm *DofMap) (*EBEOperator, error) {
	m := p.M
	if len(u) != m.NumDOF() {
		return nil, fmt.Errorf("fem: ebe: u has %d entries, want %d", len(u), m.NumDOF())
	}
	nNodes := m.Type.NodesPerElem()
	ndof := 3 * nNodes
	if ndof > maxElemDOF {
		return nil, fmt.Errorf("fem: ebe: %d element dofs exceed the kernel bound %d", ndof, maxElemDOF)
	}
	ne := m.NumElems()
	a := &EBEOperator{
		n:       dm.NumFree(),
		ndof:    ndof,
		ne:      ne,
		packLen: ndof * (ndof + 1) / 2,
	}
	a.dofs = make([]int32, ne*ndof)
	a.fullDofs = make([]int32, ne*ndof)
	for e := 0; e < ne; e++ {
		for l, v := range m.Elems[e] {
			for i := 0; i < 3; i++ {
				a.fullDofs[e*ndof+3*l+i] = int32(3*v + i)
				a.dofs[e*ndof+3*l+i] = int32(dm.Full2Red[3*v+i])
			}
		}
	}
	if err := a.integrate(p, u); err != nil {
		return nil, err
	}
	a.color(m)
	a.buildWriteSets()
	a.buildGather()
	a.buildDiagonals(dm)
	a.buildConstraintForce(cons)
	a.batches = make([]pool.IndexedKernel, len(a.colorPtr)-1)
	for c := range a.batches {
		a.batches[c] = colorBatch{a: a, lo: a.colorPtr[c]}
	}
	return a, nil
}

// integrate fills kp with each element's packed tangent, reusing the
// Problem's strided worker pattern: element slots are disjoint, so the
// concurrent fill needs no ordering pass to stay deterministic.
func (a *EBEOperator) integrate(p *Problem, u []float64) error {
	a.kp = make([]float64, a.ne*a.packLen)
	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	ndof := a.ndof
	errs := make([]error, workers)
	flops := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scr := newElemScratch(ndof)
			ke := make([]float64, ndof*ndof)
			fe := make([]float64, ndof)
			for e := w; e < a.ne; e += workers {
				fl, err := p.integrateElement(e, u, scr, ke, fe)
				if err != nil {
					errs[w] = err
					return
				}
				flops[w] += fl
				kp := a.kp[e*a.packLen : (e+1)*a.packLen]
				idx := 0
				for i := 0; i < ndof; i++ {
					for j := i; j < ndof; j++ {
						kp[idx] = ke[i*ndof+j]
						idx++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, fl := range flops {
		p.AssembleFlops += fl
	}
	return nil
}

// color greedily colors the elements so no two elements sharing a mesh
// vertex get the same color, then orders them color-major (ascending
// element id within each color). Deterministic: elements are visited in
// id order and each takes the smallest color unused by any earlier
// element on a shared vertex.
func (a *EBEOperator) color(m *mesh.Mesh) {
	ne := a.ne
	color := make([]int, ne)
	// used[v] is the bitmask of colors already taken by earlier elements
	// on vertex v. A vertex's element degree bounds its color demand;
	// 64 covers every mesh the generators produce (structured hex needs
	// 8) with a clear panic rather than silent corruption beyond that.
	used := make([]uint64, m.NumVerts())
	maxColor := 0
	for e := 0; e < ne; e++ {
		var taken uint64
		for _, v := range m.Elems[e] {
			taken |= used[v]
		}
		c := 0
		for taken&(1<<uint(c)) != 0 {
			c++
			if c >= 64 {
				panic("fem: ebe: element coloring needs more than 64 colors")
			}
		}
		color[e] = c
		if c > maxColor {
			maxColor = c
		}
		for _, v := range m.Elems[e] {
			used[v] |= 1 << uint(c)
		}
	}
	nc := maxColor + 1
	a.colorPtr = make([]int, nc+1)
	for _, c := range color {
		a.colorPtr[c+1]++
	}
	for c := 0; c < nc; c++ {
		a.colorPtr[c+1] += a.colorPtr[c]
	}
	a.order = make([]int32, ne)
	next := make([]int, nc)
	copy(next, a.colorPtr[:nc])
	for e := 0; e < ne; e++ {
		c := color[e]
		a.order[next[c]] = int32(e)
		next[c]++
	}
}

// buildWriteSets records each element's free reduced dofs in local order:
// the indices its scatter writes, and therefore its ownership claim.
func (a *EBEOperator) buildWriteSets() {
	a.wsPtr = make([]int32, a.ne+1)
	for e := 0; e < a.ne; e++ {
		cnt := int32(0)
		for _, d := range a.dofs[e*a.ndof : (e+1)*a.ndof] {
			if d >= 0 {
				cnt++
			}
		}
		a.wsPtr[e+1] = a.wsPtr[e] + cnt
	}
	a.ws = make([]int32, a.wsPtr[a.ne])
	k := 0
	for e := 0; e < a.ne; e++ {
		for _, d := range a.dofs[e*a.ndof : (e+1)*a.ndof] {
			if d >= 0 {
				a.ws[k] = d
				k++
			}
		}
	}
}

// buildGather builds the transpose (row-major) view of the element
// contributions in colored order, so the gather-form product replays each
// row's accumulation sequence exactly as the colored scatter produces it.
func (a *EBEOperator) buildGather() {
	counts := make([]int32, a.n+1)
	for _, e32 := range a.order {
		e := int(e32)
		for _, d := range a.dofs[e*a.ndof : (e+1)*a.ndof] {
			if d >= 0 {
				counts[d+1]++
			}
		}
	}
	for r := 0; r < a.n; r++ {
		counts[r+1] += counts[r]
	}
	a.rowPtr = counts
	total := int(a.rowPtr[a.n])
	a.pairElem = make([]int32, total)
	a.pairLoc = make([]uint8, total)
	next := make([]int32, a.n)
	copy(next, a.rowPtr[:a.n])
	for _, e32 := range a.order {
		e := int(e32)
		for l, d := range a.dofs[e*a.ndof : (e+1)*a.ndof] {
			if d >= 0 {
				p := next[d]
				a.pairElem[p] = e32
				a.pairLoc[p] = uint8(l)
				next[d] = p + 1
			}
		}
	}
}

// buildDiagonals assembles the scalar diagonal and, when the reduced
// numbering is 3-dof node-aligned, the 3x3 nodal diagonal blocks, both
// accumulated in ascending element order.
func (a *EBEOperator) buildDiagonals(dm *DofMap) {
	ndof := a.ndof
	a.diag = make([]float64, a.n)
	aligned := dm.NodeAligned(3)
	if aligned {
		a.diagBlocks = make([]float64, (a.n/3)*9)
	}
	for e := 0; e < a.ne; e++ {
		dofs := a.dofs[e*ndof : (e+1)*ndof]
		kp := a.kp[e*a.packLen : (e+1)*a.packLen]
		for l, d := range dofs {
			if d < 0 {
				continue
			}
			a.diag[d] += kp[a.pidx(l, l)]
		}
		if !aligned {
			continue
		}
		for ln := 0; ln < ndof/3; ln++ {
			d0 := dofs[3*ln]
			if d0 < 0 {
				continue
			}
			nb := int(d0) / 3
			blk := a.diagBlocks[nb*9 : nb*9+9]
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					li, lj := 3*ln+i, 3*ln+j
					if li <= lj {
						blk[3*i+j] += kp[a.pidx(li, lj)]
					} else {
						blk[3*i+j] += kp[a.pidx(lj, li)]
					}
				}
			}
		}
	}
}

// buildConstraintForce accumulates cf = K_fc·u_c in ascending element
// order: the term the assembled pipeline subtracts from the reduced
// right-hand side during Constraints.Reduce. Symmetrized entries of the
// packed stiffness serve both triangles, consistent with the operator's
// own apply.
func (a *EBEOperator) buildConstraintForce(cons *Constraints) {
	a.cf = make([]float64, a.n)
	if cons == nil || len(cons.Fixed) == 0 {
		return
	}
	ndof := a.ndof
	for e := 0; e < a.ne; e++ {
		dofs := a.dofs[e*ndof : (e+1)*ndof]
		full := a.fullDofs[e*ndof : (e+1)*ndof]
		kp := a.kp[e*a.packLen : (e+1)*a.packLen]
		for lc := 0; lc < ndof; lc++ {
			if dofs[lc] >= 0 {
				continue
			}
			uc, ok := cons.Fixed[int(full[lc])]
			if !ok || uc == 0 {
				continue
			}
			for lr := 0; lr < ndof; lr++ {
				d := dofs[lr]
				if d < 0 {
					continue
				}
				if lr <= lc {
					a.cf[d] += kp[a.pidx(lr, lc)] * uc
				} else {
					a.cf[d] += kp[a.pidx(lc, lr)] * uc
				}
			}
		}
	}
}

// pidx maps (i, j) with i <= j to the packed upper-triangle index.
func (a *EBEOperator) pidx(i, j int) int {
	return i*a.ndof - i*(i-1)/2 + (j - i)
}

// Rows implements sparse.Operator.
func (a *EBEOperator) Rows() int { return a.n }

// Cols implements sparse.Operator.
func (a *EBEOperator) Cols() int { return a.n }

// NNZ implements sparse.Operator: the stored scalar entry count (the
// packed element stiffnesses).
func (a *EBEOperator) NNZ() int { return a.ne * a.packLen }

// MulVecFlops implements sparse.Operator: one apply multiplies every
// element's dense ndof x ndof stiffness (2 flops per entry, the
// SpMV-equivalent convention).
func (a *EBEOperator) MulVecFlops() int64 {
	return 2 * int64(a.ne) * int64(a.ndof) * int64(a.ndof)
}

// Diag implements sparse.Operator.
func (a *EBEOperator) Diag() []float64 {
	out := make([]float64, a.n)
	copy(out, a.diag)
	return out
}

// BlockSize implements sparse.BlockDiagonaler.
func (a *EBEOperator) BlockSize() int { return 3 }

// DiagBlocks implements sparse.BlockDiagonaler: nil when the reduced
// numbering is not 3-dof node-aligned.
func (a *EBEOperator) DiagBlocks() []float64 {
	if a.diagBlocks == nil {
		return nil
	}
	out := make([]float64, len(a.diagBlocks))
	copy(out, a.diagBlocks)
	return out
}

// StorageLabel implements sparse.StorageLabeler.
func (a *EBEOperator) StorageLabel() string { return "mf" }

// StorageBytes implements sparse.ByteAccounter: every resident array of
// the operator, so bytes/dof comparisons against assembled storage are
// honest about the index structures, not just the values.
func (a *EBEOperator) StorageBytes() int64 {
	b := 8 * int64(len(a.kp)+len(a.diag)+len(a.diagBlocks)+len(a.cf))
	b += 4 * int64(len(a.dofs)+len(a.fullDofs)+len(a.order)+len(a.ws)+len(a.wsPtr)+len(a.rowPtr)+len(a.pairElem))
	b += int64(len(a.pairLoc))
	b += 8 * int64(len(a.colorPtr))
	return b
}

// ConstraintForce returns a copy of K_fc·u_c over the free dofs: subtract
// it from the restricted load vector to form the reduced right-hand side,
// exactly as Constraints.Reduce does for the assembled pipeline.
func (a *EBEOperator) ConstraintForce() []float64 {
	out := make([]float64, a.n)
	copy(out, a.cf)
	return out
}

// NumColors returns the number of element colors (diagnostics).
func (a *EBEOperator) NumColors() int { return len(a.colorPtr) - 1 }

// applyElem scatters one element's contribution: gather the element's x
// values, multiply by the packed symmetric stiffness with each output
// row accumulated in ascending local-column order (a strict left fold,
// matched bit for bit by the row-gather form), scatter to the free dofs.
func (a *EBEOperator) applyElem(x, y []float64, e int) {
	ndof := a.ndof
	dofs := a.dofs[e*ndof : (e+1)*ndof]
	kp := a.kp[e*a.packLen : (e+1)*a.packLen]
	var xbuf, ybuf [maxElemDOF]float64
	xe := xbuf[:ndof]
	ye := ybuf[:ndof]
	for c, d := range dofs {
		if d >= 0 {
			xe[c] = x[d]
		} else {
			xe[c] = 0
		}
		ye[c] = 0
	}
	idx := 0
	for i := 0; i < ndof; i++ {
		xi := xe[i]
		ye[i] += kp[idx] * xi
		idx++
		for j := i + 1; j < ndof; j++ {
			v := kp[idx]
			idx++
			ye[i] += v * xe[j]
			ye[j] += v * xi
		}
	}
	for c, d := range dofs {
		if d >= 0 {
			y[d] += ye[c]
		}
	}
}

// gatherRow computes (A·x)[r] by replaying row r's element contributions
// in colored order with the same left-fold association as applyElem, so
// gather and scatter products are bitwise identical.
func (a *EBEOperator) gatherRow(x []float64, r int) float64 {
	ndof := a.ndof
	s := 0.0
	var xbuf [maxElemDOF]float64
	xe := xbuf[:ndof]
	for p := a.rowPtr[r]; p < a.rowPtr[r+1]; p++ {
		e := int(a.pairElem[p])
		lr := int(a.pairLoc[p])
		dofs := a.dofs[e*ndof : (e+1)*ndof]
		kp := a.kp[e*a.packLen : (e+1)*a.packLen]
		for c, d := range dofs {
			if d >= 0 {
				xe[c] = x[d]
			} else {
				xe[c] = 0
			}
		}
		ps := 0.0
		idx := lr // packed index of (0, lr)
		for j := 0; j < lr; j++ {
			ps += kp[idx] * xe[j]
			idx += ndof - j - 1
		}
		for j := lr; j < ndof; j++ {
			ps += kp[idx] * xe[j]
			idx++
		}
		s += ps
	}
	return s
}

// MulVec implements sparse.Operator: the canonical colored scatter.
func (a *EBEOperator) MulVec(x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for _, e := range a.order {
		a.applyElem(x, y, int(e))
	}
}

// MulVecRange implements sparse.Operator via the row-gather form — the
// contract-satisfying kernel (writes exactly y[lo:hi]) that also makes
// the operator row-dispatchable through the worker pool.
func (a *EBEOperator) MulVecRange(x, y []float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		y[r] = a.gatherRow(x, r)
	}
}

// Residual implements sparse.Operator: r = b - A·x by row gather.
func (a *EBEOperator) Residual(b, x, r []float64) {
	for i := 0; i < a.n; i++ {
		r[i] = b[i] - a.gatherRow(x, i)
	}
}

// colorBatch adapts one color's span of the element order to
// pool.IndexedKernel: item i is the i-th element of the color.
type colorBatch struct {
	a  *EBEOperator
	lo int
}

// ApplyOne implements pool.IndexedKernel.
func (b colorBatch) ApplyOne(x, y []float64, item int) {
	b.a.applyElem(x, y, int(b.a.order[b.lo+item]))
}

// WriteSet implements pool.IndexedKernel.
func (b colorBatch) WriteSet(item int) []int32 {
	e := b.a.order[b.lo+item]
	return b.a.ws[b.a.wsPtr[e]:b.a.wsPtr[e+1]]
}

// MulVecParallel computes y = A·x on the worker pool: one indexed
// dispatch per color, so concurrent scatters never share an output index
// (the coloring invariant, re-proved per element by the promdebug
// ownership claims). Within a color each output index is written by at
// most one element and colors run in fixed sequence, so the result is
// bitwise identical to MulVec at every worker count.
func (a *EBEOperator) MulVecParallel(p *pool.Pool, x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for c := range a.batches {
		p.DispatchIndexed(a.batches[c], x, y, a.colorPtr[c+1]-a.colorPtr[c])
	}
}

// AssembleGalerkin implements sparse.GalerkinAssembler: the first coarse
// operator R·A·Rᵀ assembled directly from element contributions,
// A_c = Σ_e (R·S_e)·k_e·(R·S_e)ᵀ with S_e the element scatter — so the
// matrix-free hierarchy never forms a fine-grid matrix. Entries
// accumulate in ascending element order (deterministic), and each
// off-diagonal pair is computed once and mirrored, so the coarse matrix
// is exactly symmetric.
func (a *EBEOperator) AssembleGalerkin(r *sparse.CSR) *sparse.CSR {
	if r.NCols != a.n {
		panic(fmt.Sprintf("fem: ebe: restriction has %d cols, operator has %d rows", r.NCols, a.n))
	}
	p := r.Transpose() // fine dof -> coarse entries
	ndof := a.ndof
	b := sparse.NewBuilder(r.NRows, r.NRows)
	// Per-element scratch: local coarse index list plus dense
	// Re (nc x ndof) and M = Re·ke (nc x ndof) workspaces, regrown to
	// the largest per-element coarse support seen.
	cidx := make(map[int]int)
	var clist []int
	var re, mm []float64
	ke := make([]float64, ndof*ndof)
	for e := 0; e < a.ne; e++ {
		dofs := a.dofs[e*ndof : (e+1)*ndof]
		kp := a.kp[e*a.packLen : (e+1)*a.packLen]
		idx := 0
		for i := 0; i < ndof; i++ {
			for j := i; j < ndof; j++ {
				ke[i*ndof+j] = kp[idx]
				ke[j*ndof+i] = kp[idx]
				idx++
			}
		}
		clist = clist[:0]
		for k := range cidx {
			delete(cidx, k)
		}
		for _, d := range dofs {
			if d < 0 {
				continue
			}
			cols, _ := p.Row(int(d))
			for _, cj := range cols {
				if _, ok := cidx[cj]; !ok {
					cidx[cj] = len(clist)
					clist = append(clist, cj)
				}
			}
		}
		nc := len(clist)
		if nc == 0 {
			continue
		}
		if cap(re) < nc*ndof {
			re = make([]float64, nc*ndof)
			mm = make([]float64, nc*ndof)
		}
		re = re[:nc*ndof]
		mm = mm[:nc*ndof]
		for i := range re {
			re[i] = 0
		}
		for l, d := range dofs {
			if d < 0 {
				continue
			}
			cols, vals := p.Row(int(d))
			for k, cj := range cols {
				re[cidx[cj]*ndof+l] = vals[k]
			}
		}
		// mm = Re·ke, then A_e[ci][cj] = mm[ci]·Re[cj].
		for ci := 0; ci < nc; ci++ {
			rrow := re[ci*ndof : (ci+1)*ndof]
			mrow := mm[ci*ndof : (ci+1)*ndof]
			for j := 0; j < ndof; j++ {
				s := 0.0
				for l := 0; l < ndof; l++ {
					if rl := rrow[l]; rl != 0 {
						s += rl * ke[l*ndof+j]
					}
				}
				mrow[j] = s
			}
		}
		for ci := 0; ci < nc; ci++ {
			mrow := mm[ci*ndof : (ci+1)*ndof]
			for cj := ci; cj < nc; cj++ {
				rrow := re[cj*ndof : (cj+1)*ndof]
				v := 0.0
				for l := 0; l < ndof; l++ {
					if rl := rrow[l]; rl != 0 {
						v += mrow[l] * rl
					}
				}
				if v == 0 {
					continue
				}
				b.Add(clist[ci], clist[cj], v)
				if ci != cj {
					b.Add(clist[cj], clist[ci], v)
				}
			}
		}
	}
	return b.Build()
}

// NodeAdjacency returns the reduced-node adjacency graph (free 3-dof
// nodes adjacent when an element couples them, self included), the graph
// a distributed halo is built from. Requires a node-aligned reduced
// numbering. Setup-time only; the lists are rebuilt per call.
func (a *EBEOperator) NodeAdjacency() ([][]int, error) {
	if a.diagBlocks == nil {
		return nil, fmt.Errorf("fem: ebe: node adjacency needs a node-aligned reduced numbering")
	}
	nn := a.n / 3
	adj := make([][]int, nn)
	ndof := a.ndof
	for e := 0; e < a.ne; e++ {
		dofs := a.dofs[e*ndof : (e+1)*ndof]
		for li := 0; li < ndof; li += 3 {
			di := dofs[li]
			if di < 0 {
				continue
			}
			ni := int(di) / 3
			for lj := 0; lj < ndof; lj += 3 {
				dj := dofs[lj]
				if dj < 0 {
					continue
				}
				adj[ni] = append(adj[ni], int(dj)/3)
			}
		}
	}
	for i := range adj {
		sort.Ints(adj[i])
		k := 0
		for _, v := range adj[i] {
			if k == 0 || v != adj[i][k-1] {
				adj[i][k] = v
				k++
			}
		}
		adj[i] = adj[i][:k]
	}
	return adj, nil
}

// MulVecNodes computes the block rows y[3·nb : 3·nb+3] for each listed
// node by row gather — the per-rank kernel of the distributed
// matrix-free product, bitwise identical per row to the serial product.
// Returns the flop count of the computed rows (2·ndof per gathered
// element pair), so distributed callers can meter per-rank work.
func (a *EBEOperator) MulVecNodes(x, y []float64, nodes []int) int64 {
	pairs := int64(0)
	for _, nb := range nodes {
		r := 3 * nb
		y[r] = a.gatherRow(x, r)
		y[r+1] = a.gatherRow(x, r+1)
		y[r+2] = a.gatherRow(x, r+2)
		pairs += int64(a.rowPtr[r+3] - a.rowPtr[r])
	}
	return 2 * int64(a.ndof) * pairs
}

// NumNodes returns the reduced node count (node-aligned numbering).
func (a *EBEOperator) NumNodes() int { return a.n / 3 }

// Compile-time interface conformance: the matrix-free operator and its
// capabilities.
var (
	_ sparse.Operator          = (*EBEOperator)(nil)
	_ sparse.BlockDiagonaler   = (*EBEOperator)(nil)
	_ sparse.GalerkinAssembler = (*EBEOperator)(nil)
	_ sparse.StorageLabeler    = (*EBEOperator)(nil)
	_ sparse.ByteAccounter     = (*EBEOperator)(nil)
	_ pool.IndexedKernel       = colorBatch{}
)
