package fem

import (
	"math"
	"math/rand"
	"testing"

	"prometheus/internal/direct"
	"prometheus/internal/geom"
	"prometheus/internal/la"
	"prometheus/internal/material"
	"prometheus/internal/mesh"
	"prometheus/internal/sparse"
)

func TestHex20ShapePartitionOfUnity(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 80; trial++ {
		xi := geom.Vec3{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1, Z: rng.Float64()*2 - 1}
		n, dn := Hex20Shape(xi)
		sum := 0.0
		var gsum geom.Vec3
		for a := 0; a < 20; a++ {
			sum += n[a]
			gsum = gsum.Add(dn[a])
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("sum N = %v at %v", sum, xi)
		}
		if gsum.Norm() > 1e-12 {
			t.Fatalf("sum dN = %v at %v", gsum, xi)
		}
	}
}

// hex20RefNodes returns the 20 reference coordinates in connectivity order.
func hex20RefNodes() [20]geom.Vec3 {
	var out [20]geom.Vec3
	copy(out[:8], hexNodes[:])
	for e, pair := range hex20Mid {
		out[8+e] = hexNodes[pair[0]].Add(hexNodes[pair[1]]).Scale(0.5)
	}
	return out
}

func TestHex20ShapeKronecker(t *testing.T) {
	nodes := hex20RefNodes()
	for a := 0; a < 20; a++ {
		n, _ := Hex20Shape(nodes[a])
		for b := 0; b < 20; b++ {
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(n[b]-want) > 1e-12 {
				t.Fatalf("N%d at node %d = %v, want %v", b, a, n[b], want)
			}
		}
	}
}

func TestHex20ShapeGradientFD(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	h := 1e-6
	for trial := 0; trial < 20; trial++ {
		xi := geom.Vec3{X: rng.Float64()*1.8 - 0.9, Y: rng.Float64()*1.8 - 0.9, Z: rng.Float64()*1.8 - 0.9}
		_, dn := Hex20Shape(xi)
		for a := 0; a < 20; a++ {
			np, _ := Hex20Shape(geom.Vec3{X: xi.X + h, Y: xi.Y, Z: xi.Z})
			nm, _ := Hex20Shape(geom.Vec3{X: xi.X - h, Y: xi.Y, Z: xi.Z})
			if fd := (np[a] - nm[a]) / (2 * h); math.Abs(fd-dn[a].X) > 1e-6 {
				t.Fatalf("dN%d/dx = %v, FD %v", a, dn[a].X, fd)
			}
			np, _ = Hex20Shape(geom.Vec3{X: xi.X, Y: xi.Y + h, Z: xi.Z})
			nm, _ = Hex20Shape(geom.Vec3{X: xi.X, Y: xi.Y - h, Z: xi.Z})
			if fd := (np[a] - nm[a]) / (2 * h); math.Abs(fd-dn[a].Y) > 1e-6 {
				t.Fatalf("dN%d/dy = %v, FD %v", a, dn[a].Y, fd)
			}
			np, _ = Hex20Shape(geom.Vec3{X: xi.X, Y: xi.Y, Z: xi.Z + h})
			nm, _ = Hex20Shape(geom.Vec3{X: xi.X, Y: xi.Y, Z: xi.Z - h})
			if fd := (np[a] - nm[a]) / (2 * h); math.Abs(fd-dn[a].Z) > 1e-6 {
				t.Fatalf("dN%d/dz = %v, FD %v", a, dn[a].Z, fd)
			}
		}
	}
}

func TestHex20ReproducesQuadraticField(t *testing.T) {
	// Serendipity elements reproduce complete quadratics: interpolating
	// f(x) = x² + 2xy - z² + 3y at the nodes must give the exact value at
	// interior points of the reference element.
	f := func(p geom.Vec3) float64 { return p.X*p.X + 2*p.X*p.Y - p.Z*p.Z + 3*p.Y }
	nodes := hex20RefNodes()
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 50; trial++ {
		xi := geom.Vec3{X: rng.Float64()*2 - 1, Y: rng.Float64()*2 - 1, Z: rng.Float64()*2 - 1}
		n, _ := Hex20Shape(xi)
		got := 0.0
		for a := 0; a < 20; a++ {
			got += n[a] * f(nodes[a])
		}
		if math.Abs(got-f(xi)) > 1e-12 {
			t.Fatalf("quadratic not reproduced at %v: %v vs %v", xi, got, f(xi))
		}
	}
}

func TestHex20StructuredMesh(t *testing.T) {
	m := mesh.StructuredHex20(2, 2, 2, 1, 1, 1, nil)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3³ corners + shared midside nodes: edges x: 2*3*3=18, y: 18, z: 18.
	if m.NumVerts() != 27+54 {
		t.Fatalf("verts = %d, want 81", m.NumVerts())
	}
	if m.NumElems() != 8 {
		t.Fatalf("elems = %d", m.NumElems())
	}
	// Boundary facets: 6 faces × 4 facets, 8 nodes each.
	facets := m.BoundaryFacets()
	if len(facets) != 24 {
		t.Fatalf("facets = %d", len(facets))
	}
	for _, f := range facets {
		if len(f.Verts) != 8 {
			t.Fatalf("facet has %d verts", len(f.Verts))
		}
	}
}

func TestHex20RigidBodyAndPatch(t *testing.T) {
	m := mesh.StructuredHex20(2, 1, 1, 2, 1, 1, nil)
	p := NewProblem(m, []material.Model{material.LinearElastic{E: 1, Nu: 0.3}}, false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	if !k.IsSymmetric(1e-9) {
		t.Fatal("K not symmetric")
	}
	// Rigid modes in the kernel.
	u := make([]float64, m.NumDOF())
	y := make([]float64, m.NumDOF())
	for v, pt := range m.Coords {
		u[3*v] = 0.3 - pt.Y // translation + rotation about z
		u[3*v+1] = pt.X
		u[3*v+2] = -0.1
	}
	k.MulVec(u, y)
	if la.MaxAbs(y) > 1e-10 {
		t.Fatalf("rigid mode residual %v", la.MaxAbs(y))
	}
	// Constant-strain patch: interior nodal equilibrium under a linear
	// displacement field.
	for v, pt := range m.Coords {
		u[3*v] = 0.01*pt.X + 0.002*pt.Y
		u[3*v+1] = -0.005 * pt.Y
		u[3*v+2] = 0.004*pt.Z + 0.001*pt.Y
	}
	_, fint, err := p.AssembleTangent(u)
	if err != nil {
		t.Fatal(err)
	}
	facets := m.BoundaryFacets()
	ext := mesh.ExteriorVerts(m.NumVerts(), facets)
	for v := range m.Coords {
		if ext[v] {
			continue
		}
		for c := 0; c < 3; c++ {
			if math.Abs(fint[3*v+c]) > 1e-11 {
				t.Fatalf("interior residual at %d.%d = %v", v, c, fint[3*v+c])
			}
		}
	}
}

func TestHex20BendingBeatsHex8(t *testing.T) {
	// Quadratic elements resolve bending far better than trilinear ones on
	// the same coarse mesh: the Hex20 cantilever tip deflection must exceed
	// the (overly stiff) Hex8 one and be close to a refined reference.
	tip := func(m *mesh.Mesh) float64 {
		p := NewProblem(m, []material.Model{material.LinearElastic{E: 1, Nu: 0.3}}, false)
		k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
		if err != nil {
			t.Fatal(err)
		}
		c := NewConstraints()
		f := make([]float64, m.NumDOF())
		nTip := 0
		for v, pt := range m.Coords {
			if pt.X == 0 {
				c.FixVert(v, 0, 0, 0)
			}
			if pt.X == 5 {
				f[3*v+2] = -1e-4
				nTip++
			}
		}
		dm := c.NewDofMap(m.NumDOF())
		kred, fred := c.Reduce(k, f, dm)
		ch := mustChol(t, kred)
		x := make([]float64, kred.NRows)
		ch.Solve(fred, x)
		full := make([]float64, m.NumDOF())
		c.Expand(x, dm, full)
		s := 0.0
		for v, pt := range m.Coords {
			if pt.X == 5 {
				s += full[3*v+2]
			}
		}
		return s / float64(nTip) / float64(nTip) // normalize per-node load effect
	}
	h8 := tip(mesh.StructuredHex(5, 1, 1, 5, 1, 1, nil))
	h20 := tip(mesh.StructuredHex20(5, 1, 1, 5, 1, 1, nil))
	if math.Abs(h20) < 1.2*math.Abs(h8) {
		t.Fatalf("Hex20 should be much softer in bending: %v vs %v", h20, h8)
	}
}

func TestHex20BBarAndPlasticity(t *testing.T) {
	// The generic element machinery (B-bar, J2 state per Gauss point) must
	// work for the quadratic element too.
	m := mesh.StructuredHex20(1, 1, 1, 1, 1, 1, nil)
	p := NewProblem(m, []material.Model{material.J2Plasticity{E: 1, Nu: 0.49, SigmaY: 1e-4, H: 0.002}}, true)
	if len(p.States[0]) != len(HexGauss3) {
		t.Fatalf("states per elem = %d, want %d", len(p.States[0]), len(HexGauss3))
	}
	u := make([]float64, m.NumDOF())
	for v, pt := range m.Coords {
		u[3*v] = 0.01 * pt.Z // strong shear
	}
	if err := p.Commit(u); err != nil {
		t.Fatal(err)
	}
	if p.PlasticFraction(0) == 0 {
		t.Fatal("no yielding recorded")
	}
}

// mustChol factors a reduced operator with the sparse direct solver.
func mustChol(t *testing.T, k *sparse.CSR) *direct.Cholesky {
	t.Helper()
	ch, err := direct.New(k)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}
