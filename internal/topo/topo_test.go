package topo

import (
	"testing"

	"prometheus/internal/geom"
	"prometheus/internal/graph"
	"prometheus/internal/mesh"
	"prometheus/internal/par"
)

// cube returns an n×n×n unit cube mesh with its boundary machinery.
func cube(n int) (*mesh.Mesh, []mesh.Facet, [][]int) {
	m := mesh.StructuredHex(n, n, n, 1, 1, 1, nil)
	facets := m.BoundaryFacets()
	adj := mesh.FacetAdjacency(facets)
	return m, facets, adj
}

func TestIdentifyFacesCube(t *testing.T) {
	_, facets, adj := cube(3)
	faceID, n := IdentifyFaces(facets, adj, DefaultTOL)
	if n != 6 {
		t.Fatalf("cube should have 6 faces, got %d", n)
	}
	// All facets with the same normal must share a face id.
	byNormal := make(map[geom.Vec3]int)
	for i, f := range facets {
		if prev, ok := byNormal[f.Normal]; ok {
			if faceID[i] != prev {
				t.Fatalf("face split: normal %v has ids %d and %d", f.Normal, prev, faceID[i])
			}
		} else {
			byNormal[f.Normal] = faceID[i]
		}
	}
	if len(byNormal) != 6 {
		t.Fatalf("normals = %d", len(byNormal))
	}
}

func TestClassifyCube(t *testing.T) {
	m, facets, adj := cube(3)
	faceID, _ := IdentifyFaces(facets, adj, DefaultTOL)
	c := Classify(m.NumVerts(), facets, faceID)
	counts := map[int]int{}
	for _, r := range c.Rank {
		counts[r]++
	}
	// 4^3 lattice: 8 corners, 12 edges × 2 inner verts = 24 edge verts,
	// 6 faces × 4 inner verts = 24 surface verts, 8 interior.
	if counts[RankCorner] != 8 || counts[RankEdge] != 24 ||
		counts[RankSurface] != 24 || counts[RankInterior] != 8 {
		t.Fatalf("classification counts = %v", counts)
	}
	imm := c.Immortal()
	nImm := 0
	for _, b := range imm {
		if b {
			nImm++
		}
	}
	if nImm != 8 {
		t.Fatalf("immortal corners = %d", nImm)
	}
	// Corner vertices touch 3 faces; interior touch none.
	for v, r := range c.Rank {
		switch r {
		case RankCorner:
			if len(c.Faces[v]) != 3 {
				t.Fatalf("corner %d touches %d faces", v, len(c.Faces[v]))
			}
		case RankInterior:
			if len(c.Faces[v]) != 0 {
				t.Fatalf("interior %d touches faces %v", v, c.Faces[v])
			}
		}
	}
}

// thinSlab returns a 1-element-thick slab: nx × ny × 1 elements.
func thinSlab(nx, ny int) *mesh.Mesh {
	return mesh.StructuredHex(nx, ny, 1, float64(nx), float64(ny), 0.4, nil)
}

func TestModifiedGraphThinBody(t *testing.T) {
	// Section 4.6 and Figure 4: on a thin slab, top-face vertices are
	// adjacent (via elements) to bottom-face vertices; the modified graph
	// must delete those edges so opposing faces cannot decimate each other.
	m := thinSlab(6, 6)
	facets := m.BoundaryFacets()
	adj := mesh.FacetAdjacency(facets)
	faceID, _ := IdentifyFaces(facets, adj, DefaultTOL)
	c := Classify(m.NumVerts(), facets, faceID)
	g := m.NodeGraph()
	mg := c.ModifiedGraph(g)
	if mg.NumEdges() >= g.NumEdges() {
		t.Fatal("modified graph should remove edges")
	}
	// Find a pure top-face surface vertex and check it lost its bottom
	// neighbours.
	top := m.VertsWhere(func(p geom.Vec3) bool { return p.Z > 0.39 })
	bottom := make(map[int]bool)
	for _, v := range m.VertsWhere(func(p geom.Vec3) bool { return p.Z < 0.01 }) {
		bottom[v] = true
	}
	checked := false
	for _, v := range top {
		if c.Rank[v] != RankSurface {
			continue
		}
		for _, w := range mg.Neighbors(v) {
			if bottom[w] && c.Rank[w] == RankSurface {
				t.Fatalf("surface vertex %d still adjacent to opposing surface vertex %d", v, w)
			}
		}
		checked = true
	}
	if !checked {
		t.Fatal("no surface vertex found on top face")
	}
	// Edges to interior vertices are kept. (A 1-element-thick slab has no
	// interior vertices, so check on a thicker mesh.)
	m2 := mesh.StructuredHex(4, 4, 4, 1, 1, 1, nil)
	c2 := Reclassify(m2, DefaultTOL)
	g2 := m2.NodeGraph()
	mg2 := c2.ModifiedGraph(g2)
	for v := 0; v < g2.N; v++ {
		if c2.Rank[v] != RankInterior {
			continue
		}
		if g2.Degree(v) != mg2.Degree(v) {
			t.Fatalf("interior vertex %d lost edges", v)
		}
	}
}

func TestMISOnModifiedGraphCoversThinBody(t *testing.T) {
	// The end-to-end property behind Figures 4-6: with the modified graph
	// and rank ordering, both faces of a thin region keep representation.
	m := thinSlab(8, 8)
	facets := m.BoundaryFacets()
	adj := mesh.FacetAdjacency(facets)
	faceID, _ := IdentifyFaces(facets, adj, DefaultTOL)
	c := Classify(m.NumVerts(), facets, faceID)
	g := m.NodeGraph()
	mg := c.ModifiedGraph(g)
	order := graph.RankedOrder(c.Rank, graph.NaturalOrder(g.N))
	mis := graph.MIS(mg, order, c.Rank, c.Immortal())
	// Both z-extremes must appear in the MIS.
	hasTop, hasBottom := false, false
	for _, v := range mis {
		if m.Coords[v].Z > 0.39 {
			hasTop = true
		}
		if m.Coords[v].Z < 0.01 {
			hasBottom = true
		}
	}
	if !hasTop || !hasBottom {
		t.Fatalf("thin body lost a face: top=%v bottom=%v", hasTop, hasBottom)
	}
	// Contrast: count MIS membership per face on the plain graph ordered
	// naturally; the modified-graph MIS must cover at least as many
	// distinct faces.
	misPlain := graph.MIS(g, graph.NaturalOrder(g.N), nil, nil)
	facesCovered := func(set []int) int {
		got := map[int]bool{}
		for _, v := range set {
			for _, f := range c.Faces[v] {
				got[f] = true
			}
		}
		return len(got)
	}
	if facesCovered(mis) < facesCovered(misPlain) {
		t.Fatalf("modified MIS covers %d faces < plain %d", facesCovered(mis), facesCovered(misPlain))
	}
}

func TestFeatures(t *testing.T) {
	m, facets, adj := cube(2)
	faceID, _ := IdentifyFaces(facets, adj, DefaultTOL)
	c := Classify(m.NumVerts(), facets, faceID)
	feats := c.Features()
	// Cube: 6 surface features + 12 edge features + 8 corner features = 26.
	if len(feats) != 26 {
		t.Fatalf("features = %d, want 26", len(feats))
	}
}

func TestReclassifyMatchesClassify(t *testing.T) {
	m, facets, adj := cube(3)
	faceID, _ := IdentifyFaces(facets, adj, DefaultTOL)
	want := Classify(m.NumVerts(), facets, faceID)
	got := Reclassify(m, DefaultTOL)
	for v := range want.Rank {
		if want.Rank[v] != got.Rank[v] {
			t.Fatalf("rank mismatch at %d: %d vs %d", v, want.Rank[v], got.Rank[v])
		}
	}
}

func TestParallelIdentifyFacesCube(t *testing.T) {
	m, facets, adj := cube(4)
	for _, p := range []int{1, 2, 3, 4} {
		vertOwner := make([]int, m.NumVerts())
		for v := range vertOwner {
			vertOwner[v] = v % p
		}
		fo := FacetOwnerFromVerts(facets, vertOwner)
		comm := par.NewComm(p)
		faceID, n := ParallelIdentifyFaces(comm, facets, adj, fo, DefaultTOL)
		if n != 6 {
			t.Fatalf("p=%d: faces = %d, want 6", p, n)
		}
		// Same-normal facets must end in the same face.
		byNormal := make(map[geom.Vec3]int)
		for i, f := range facets {
			if prev, ok := byNormal[f.Normal]; ok && faceID[i] != prev {
				t.Fatalf("p=%d: face split on normal %v", p, f.Normal)
			}
			byNormal[f.Normal] = faceID[i]
		}
	}
}

func TestParallelFacesClassificationAgreesSerially(t *testing.T) {
	// The classification derived from parallel faces must match the serial
	// one on a cube (face identity is unique there).
	m, facets, adj := cube(3)
	serialID, _ := IdentifyFaces(facets, adj, DefaultTOL)
	want := Classify(m.NumVerts(), facets, serialID)
	vertOwner := graph.GreedyPartition(m.NodeGraph(), 3)
	fo := FacetOwnerFromVerts(facets, vertOwner)
	parID, _ := ParallelIdentifyFaces(par.NewComm(3), facets, adj, fo, DefaultTOL)
	got := Classify(m.NumVerts(), facets, parID)
	for v := range want.Rank {
		if want.Rank[v] != got.Rank[v] {
			t.Fatalf("rank mismatch at vertex %d: serial %d parallel %d", v, want.Rank[v], got.Rank[v])
		}
	}
}

func TestIdentifyFacesTOLSweep(t *testing.T) {
	// With TOL = -1 every connected boundary is a single face; with TOL
	// close to 1 every facet is its own face (flat cube faces still merge).
	_, facets, adj := cube(2)
	_, loose := IdentifyFaces(facets, adj, -1.1)
	if loose != 1 {
		t.Fatalf("TOL<-1 should yield one face, got %d", loose)
	}
	_, strict := IdentifyFaces(facets, adj, 0.999999)
	if strict != 6 {
		t.Fatalf("strict TOL on a cube should still find 6 flat faces, got %d", strict)
	}
}
