package topo

import (
	"sort"

	"prometheus/internal/mesh"
	"prometheus/internal/par"
)

// ParallelIdentifyFaces runs the distributed face identification of
// section 4.5. Facets are assigned to ranks by facetOwner; each rank runs
// the serial algorithm of Figure 3 on its local facets with face ids drawn
// from the tuple <rank, local id>. Facet pairs that straddle a rank
// boundary and satisfy the angle test (against both local root normals, the
// role of the paper's "seed" facets) generate edges in the face-id graph
// G_fid. G_fid is combined with a global reduction — the paper notes this
// is not a scalable construct "but the constants are very small" — and
// every facet takes the largest face id reachable from its own, exactly as
// in the paper. The resulting faces are not guaranteed to match the serial
// algorithm's, but are "close enough" (section 4.5); the tests check the
// structural invariants instead of exact equality.
//
// The returned ids are dense 1-based ints; the face count is also returned.
func ParallelIdentifyFaces(comm *par.Comm, facets []mesh.Facet, adj [][]int, facetOwner []int, tol float64) ([]int, int) {
	p := comm.Size()
	if len(facetOwner) != len(facets) {
		panic("topo: one owner per facet required")
	}

	// Encode <rank, local id> as rank*stride + local. Local ids are
	// 1-based so encoded ids are always positive.
	stride := len(facets) + 1

	local := make([][]int, p) // facets per rank
	for f, o := range facetOwner {
		local[o] = append(local[o], f)
	}

	globalID := make([]int, len(facets)) // encoded id per facet
	rootOf := make([]int, len(facets))   // root facet of each facet's tree
	type fidEdge [2]int
	edgeSets := make([][]fidEdge, p)

	comm.Run(func(r *par.Rank) {
		me := r.ID()
		mine := local[me]
		inMine := make(map[int]bool, len(mine))
		for _, f := range mine {
			inMine[f] = true
		}
		// Serial Figure-3 BFS restricted to local facets.
		id := make(map[int]int, len(mine))
		root := make(map[int]int, len(mine))
		current := 0
		var list []int
		for _, f := range mine {
			if id[f] != 0 {
				continue
			}
			current++
			rootNorm := facets[f].Normal
			id[f] = current
			root[f] = f
			list = append(list[:0], f)
			for len(list) > 0 {
				g := list[0]
				list = list[1:]
				for _, f1 := range adj[g] {
					if !inMine[f1] || id[f1] != 0 {
						continue
					}
					if rootNorm.Dot(facets[f1].Normal) > tol &&
						facets[g].Normal.Dot(facets[f1].Normal) > tol {
						id[f1] = current
						root[f1] = f
						list = append(list, f1)
					}
				}
			}
		}
		// Publish local results (disjoint writes).
		for _, f := range mine {
			globalID[f] = me*stride + id[f]
			rootOf[f] = root[f]
		}
		r.Barrier()

		// Cross-rank seed edges: for each local facet adjacent to a facet
		// on another rank, apply the angle test using both trees' root
		// normals (the seed facet carries its root normal in the paper).
		var myEdges []fidEdge
		for _, f := range mine {
			for _, f1 := range adj[f] {
				if facetOwner[f1] == me {
					continue
				}
				rn := facets[rootOf[f]].Normal
				rn1 := facets[rootOf[f1]].Normal
				if rn.Dot(facets[f1].Normal) > tol &&
					rn1.Dot(facets[f].Normal) > tol &&
					facets[f].Normal.Dot(facets[f1].Normal) > tol {
					myEdges = append(myEdges, fidEdge{globalID[f], globalID[f1]})
				}
			}
		}
		edgeSets[me] = myEdges
		// Global reduction of G_fid sizes stands in for the all-gather; the
		// merge below happens after Run returns.
		r.AllReduceIntSum(len(myEdges))
	})

	// Union-find over encoded ids; each facet takes the largest id
	// reachable in G_fid.
	parent := make(map[int]int)
	var find func(x int) int
	find = func(x int) int {
		px, ok := parent[x]
		if !ok || px == x {
			parent[x] = x
			return x
		}
		rt := find(px)
		parent[x] = rt
		return rt
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Keep the larger id as the representative ("largest face ID that
		// f.face_ID can reach").
		if ra < rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	for f := range facets {
		find(globalID[f])
	}
	for _, es := range edgeSets {
		for _, e := range es {
			union(e[0], e[1])
		}
	}
	// Densify.
	repToDense := make(map[int]int)
	out := make([]int, len(facets))
	nFaces := 0
	reps := make([]int, 0)
	for f := range facets {
		rt := find(globalID[f])
		if _, ok := repToDense[rt]; !ok {
			reps = append(reps, rt)
			repToDense[rt] = 0
		}
	}
	sort.Ints(reps)
	for _, rt := range reps {
		nFaces++
		repToDense[rt] = nFaces
	}
	for f := range facets {
		out[f] = repToDense[find(globalID[f])]
	}
	return out, nFaces
}

// FacetOwnerFromVerts derives a facet partition from a vertex partition:
// each facet goes to the owner of its smallest vertex id (a deterministic
// stand-in for the paper's element-overlap construction of F_p).
func FacetOwnerFromVerts(facets []mesh.Facet, vertOwner []int) []int {
	out := make([]int, len(facets))
	for i, f := range facets {
		min := f.Verts[0]
		for _, v := range f.Verts[1:] {
			if v < min {
				min = v
			}
		}
		out[i] = vertOwner[min]
	}
	return out
}
