// Package topo implements the geometric heuristics at the heart of the
// paper's coarsening: the face identification algorithm of Figure 3, the
// topological classification of vertices (interior / surface / edge /
// corner, section 4.4), and the modified MIS graph of section 4.6 that
// protects thin regions and features.
package topo

import (
	"strconv"

	"prometheus/internal/graph"
	"prometheus/internal/mesh"
	"prometheus/internal/sortutil"
)

// Vertex ranks of section 4.4. Higher ranks are coarsened first and cannot
// be suppressed by lower ranks.
const (
	RankInterior = 0
	RankSurface  = 1
	RankEdge     = 2
	RankCorner   = 3
)

// DefaultTOL is the face identification tolerance (cos of the maximum angle
// any facet of a face may make with the root facet and with its
// neighbours). cos(30°) keeps gently curved shells as single faces while
// separating the faces of a box.
const DefaultTOL = 0.866

// IdentifyFaces assigns a face id to every facet with the breadth-first
// algorithm of Figure 3: a face grows from an arbitrary root facet over
// adjacent facets whose normals stay within arccos(TOL) of both the root
// normal and the current facet's normal. Face ids are 1-based; the number
// of faces is returned.
func IdentifyFaces(facets []mesh.Facet, adj [][]int, tol float64) ([]int, int) {
	faceID := make([]int, len(facets))
	current := 0
	var list []int
	for f := range facets {
		if faceID[f] != 0 {
			continue
		}
		current++
		rootNorm := facets[f].Normal
		list = append(list[:0], f)
		faceID[f] = current
		for len(list) > 0 {
			g := list[0]
			list = list[1:]
			for _, f1 := range adj[g] {
				if faceID[f1] != 0 {
					continue
				}
				if rootNorm.Dot(facets[f1].Normal) > tol &&
					facets[g].Normal.Dot(facets[f1].Normal) > tol {
					faceID[f1] = current
					list = append(list, f1)
				}
			}
		}
	}
	return faceID, current
}

// Classification is the per-vertex topological data derived from the faces.
type Classification struct {
	// Rank is the vertex rank: RankInterior..RankCorner.
	Rank []int
	// Faces[v] is the sorted set of face ids incident to vertex v (empty
	// for interior vertices).
	Faces [][]int
}

// Classify computes vertex ranks from facet face ids (section 4.4): a
// vertex on exactly one face is a surface vertex, on two faces an edge
// vertex, on more a corner.
func Classify(nVerts int, facets []mesh.Facet, faceID []int) *Classification {
	sets := make([]map[int]bool, nVerts)
	for i, f := range facets {
		for _, v := range f.Verts {
			if sets[v] == nil {
				sets[v] = make(map[int]bool, 4)
			}
			sets[v][faceID[i]] = true
		}
	}
	c := &Classification{
		Rank:  make([]int, nVerts),
		Faces: make([][]int, nVerts),
	}
	for v := 0; v < nVerts; v++ {
		if sets[v] == nil {
			c.Rank[v] = RankInterior
			continue
		}
		ids := sortutil.Keys(sets[v])
		c.Faces[v] = ids
		switch len(ids) {
		case 1:
			c.Rank[v] = RankSurface
		case 2:
			c.Rank[v] = RankEdge
		default:
			c.Rank[v] = RankCorner
		}
	}
	return c
}

// Immortal returns the corner mask: the paper does not allow corners to be
// deleted at all.
func (c *Classification) Immortal() []bool {
	imm := make([]bool, len(c.Rank))
	for v, r := range c.Rank {
		imm[v] = r == RankCorner
	}
	return imm
}

// sharesFace reports whether two classified vertices touch a common face.
func (c *Classification) sharesFace(u, v int) bool {
	a, b := c.Faces[u], c.Faces[v]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// ModifiedGraph implements section 4.6: starting from the vertex adjacency
// graph g, delete every edge between two exterior vertices that do not
// share a face. This prevents vertices on one face of a thin region from
// decimating the vertices of an opposing face, corner vertices from
// deleting edge vertices of unrelated features, and surface vertices from
// deleting surface vertices of different surfaces. Edges with an interior
// endpoint are kept.
func (c *Classification) ModifiedGraph(g *graph.Graph) *graph.Graph {
	return g.FilterEdges(func(a, b int) bool {
		if c.Rank[a] == RankInterior || c.Rank[b] == RankInterior {
			return true
		}
		return c.sharesFace(a, b)
	})
}

// Features enumerates the feature sets of section 4.4 item 2: for every
// distinct face-id set appearing on edge/corner vertices (and every single
// face for surfaces), the list of vertices carrying exactly that set. The
// map key is the face-id set rendered as a sorted string of ids.
func (c *Classification) Features() map[string][]int {
	out := make(map[string][]int)
	for v, ids := range c.Faces {
		if len(ids) == 0 {
			continue
		}
		key := ""
		for _, id := range ids {
			key += strconv.Itoa(id) + ","
		}
		out[key] = append(out[key], v)
	}
	return out
}

// Reclassify recomputes ranks for a coarse grid from its own facets
// (section 4.6: "we mitigate this problem by reclassifying vertices on the
// coarser grids", applied from the third grid on). It is a convenience
// wrapper: extract boundary facets, identify faces, classify.
func Reclassify(m *mesh.Mesh, tol float64) *Classification {
	facets := m.BoundaryFacets()
	adj := mesh.FacetAdjacency(facets)
	faceID, _ := IdentifyFaces(facets, adj, tol)
	return Classify(m.NumVerts(), facets, faceID)
}
