package prometheus

import (
	"math"
	"testing"

	"prometheus/internal/obs"
	"prometheus/internal/problems"
)

// TestSolverDeterminismSpheres is the regression oracle for the map-order
// lint rule: two cold builds of the sphere-in-cube hierarchy must produce
// bit-identical coarse-grid sizes and residual histories. Any map-ordered
// iteration that leaks into the coarsening pipeline (MIS ordering, face
// classification, Delaunay inputs, graph adjacency) shows up here as a
// diverging vertex count or residual.
func TestSolverDeterminismSpheres(t *testing.T) {
	type outcome struct {
		levels    int
		counts    []int
		residuals []uint64
		solution  []uint64
	}
	run := func() outcome {
		s := problems.NewSpheresConfig(problems.SpheresConfig{
			Layers: 3, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2,
		})
		solver, err := NewSolver(s.Mesh, s.Cons, Options{RTol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		p := NewProblem(s.Mesh, s.Models, true)
		k, _, err := p.AssembleTangent(make([]float64, s.Mesh.NumDOF()))
		if err != nil {
			t.Fatal(err)
		}
		// Zero loads: the RHS comes entirely from the prescribed crush
		// displacements in the problem's constraint set.
		u, res, err := solver.SolveLinear(k, make([]float64, s.Mesh.NumDOF()))
		if err != nil {
			t.Fatal(err)
		}
		counts, _ := solver.VertexReduction()
		bits := func(xs []float64) []uint64 {
			out := make([]uint64, len(xs))
			for i, x := range xs {
				out[i] = math.Float64bits(x)
			}
			return out
		}
		return outcome{
			levels:    solver.NumLevels(),
			counts:    counts,
			residuals: bits(res.Residuals),
			solution:  bits(u),
		}
	}

	a, b := run(), run()
	if a.levels != b.levels {
		t.Fatalf("level counts differ between runs: %d vs %d", a.levels, b.levels)
	}
	if len(a.counts) != len(b.counts) {
		t.Fatalf("vertex-count shapes differ: %v vs %v", a.counts, b.counts)
	}
	for i := range a.counts {
		if a.counts[i] != b.counts[i] {
			t.Fatalf("coarse-grid sizes diverge at level %d: %v vs %v", i, a.counts, b.counts)
		}
	}
	if len(a.residuals) != len(b.residuals) {
		t.Fatalf("residual histories have different lengths: %d vs %d", len(a.residuals), len(b.residuals))
	}
	for i := range a.residuals {
		if a.residuals[i] != b.residuals[i] {
			t.Fatalf("residual history diverges at iteration %d (bitwise)", i)
		}
	}
	for i := range a.solution {
		if a.solution[i] != b.solution[i] {
			t.Fatalf("solution diverges at dof %d (bitwise)", i)
		}
	}
	if a.levels < 2 {
		t.Fatalf("spheres problem did not coarsen: %d levels", a.levels)
	}
}

// TestSolverDeterminismObsEnabled asserts the observability subsystem
// is purely passive: a solve with obs recording produces the bitwise
// identical solution, residual history and iteration count as a solve
// without it. Any obs call that perturbs the numerics (reordering,
// extra work on a measured value, a stray float in a kernel) diverges
// here.
func TestSolverDeterminismObsEnabled(t *testing.T) {
	run := func(record bool) ([]uint64, []uint64, int) {
		if record {
			obs.Enable()
		} else {
			obs.Disable()
		}
		defer obs.Disable()
		s := problems.NewSpheresConfig(problems.SpheresConfig{
			Layers: 3, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2,
		})
		solver, err := NewSolver(s.Mesh, s.Cons, Options{RTol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		p := NewProblem(s.Mesh, s.Models, true)
		k, _, err := p.AssembleTangent(make([]float64, s.Mesh.NumDOF()))
		if err != nil {
			t.Fatal(err)
		}
		u, res, err := solver.SolveLinear(k, make([]float64, s.Mesh.NumDOF()))
		if err != nil {
			t.Fatal(err)
		}
		bits := func(xs []float64) []uint64 {
			out := make([]uint64, len(xs))
			for i, x := range xs {
				out[i] = math.Float64bits(x)
			}
			return out
		}
		return bits(u), bits(res.Residuals), res.Iterations
	}

	uOff, rOff, itOff := run(false)
	uOn, rOn, itOn := run(true)
	if itOff != itOn {
		t.Fatalf("iteration counts differ: %d without obs, %d with", itOff, itOn)
	}
	if len(rOff) != len(rOn) {
		t.Fatalf("residual history lengths differ: %d vs %d", len(rOff), len(rOn))
	}
	for i := range rOff {
		if rOff[i] != rOn[i] {
			t.Fatalf("residual history diverges at iteration %d with obs enabled (bitwise)", i)
		}
	}
	for i := range uOff {
		if uOff[i] != uOn[i] {
			t.Fatalf("solution diverges at dof %d with obs enabled (bitwise)", i)
		}
	}

	// The recording run must actually have recorded the solve: Disable
	// keeps the data, so the obs-on run's profile is still readable.
	prof := obs.Snapshot()
	if _, ok := prof.Event("krylov.fpcg"); !ok {
		t.Fatal("obs-enabled solve recorded no krylov.fpcg event")
	}
	if prof.Counter("krylov.iterations") == 0 {
		t.Fatal("obs-enabled solve recorded no iterations")
	}
}
