// Benchmarks regenerating every table and figure of the paper's evaluation
// (section 7), plus kernel benchmarks for the substrates. Each experiment
// bench reports its headline quantities as custom metrics (iterations,
// efficiency, plastic fraction, ...) so `go test -bench=.` reproduces the
// paper's numbers alongside Go's timing output. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for the recorded comparison.
package prometheus

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"prometheus/internal/aggregation"
	"prometheus/internal/core"
	"prometheus/internal/delaunay"
	"prometheus/internal/experiments"
	"prometheus/internal/fem"
	"prometheus/internal/geom"
	"prometheus/internal/graph"
	"prometheus/internal/krylov"
	"prometheus/internal/material"
	"prometheus/internal/mesh"
	"prometheus/internal/multigrid"
	"prometheus/internal/obs"
	"prometheus/internal/par"
	"prometheus/internal/perf"
	"prometheus/internal/problems"
	"prometheus/internal/smooth"
	"prometheus/internal/sparse"
	"prometheus/internal/topo"
)

// BenchmarkTable1Materials exercises the Table 1 constitutive updates: the
// J2 radial return with kinematic hardening and the Neo-Hookean response.
func BenchmarkTable1Materials(b *testing.B) {
	hard := material.J2Plasticity{E: 1, Nu: 0.3, SigmaY: 1e-3, H: 0.002}
	soft := material.NeoHookean{E: 1e-4, Nu: 0.49}
	eps := material.Voigt{0.001, -0.0003, -0.0003, 0.004, 0.001, -0.002}
	var st material.State
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, st = hard.Update(st, eps)
		_, _, _ = soft.Update(material.State{}, eps)
	}
}

// BenchmarkTable2Iterations runs the first linear solve of the scaled
// model problem (Table 2's iteration column) and reports the iteration
// count and modeled aggregate Mflop rate.
func BenchmarkTable2Iterations(b *testing.B) {
	spec := experiments.Series(1)[0]
	var last *experiments.LinearRun
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunLinear(spec, perf.PaperIBM(), multigrid.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Iters), "PCG-iters")
	b.ReportMetric(last.ModelMflops, "model-Mflop/s")
	b.ReportMetric(float64(last.Dof), "dof")
}

// BenchmarkFig7Hierarchy builds the coarse grid hierarchy of the model
// problem (the Figure 7 artifact) and reports the level count and total
// vertex reduction.
func BenchmarkFig7Hierarchy(b *testing.B) {
	s := problems.NewSpheresConfig(problems.SpheresConfig{
		Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2,
	})
	var h *core.Hierarchy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		h, err = core.Coarsen(s.Mesh, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	counts, _ := h.VertexReduction()
	b.ReportMetric(float64(h.NumLevels()), "levels")
	b.ReportMetric(float64(counts[0])/float64(counts[len(counts)-1]), "total-reduction")
}

// BenchmarkFig9MeshGen generates the concentric-spheres model problem
// (Figure 9) at the paper's 17-layer geometry.
func BenchmarkFig9MeshGen(b *testing.B) {
	var s *problems.Spheres
	for i := 0; i < b.N; i++ {
		s = problems.NewSpheresConfig(problems.SpheresConfig{
			Layers: 17, ElemsPerLayer: 1, CoreElems: 3, OuterElems: 3,
		})
	}
	b.ReportMetric(float64(s.Mesh.NumDOF()), "dof")
	b.ReportMetric(100*s.HardFraction(), "hard-%")
}

// BenchmarkFig10Solve measures the phase content of Figure 10: one full
// linear-solve pipeline (partition, mesh setup, fine-grid assembly, matrix
// setup, solve) on the base size, reporting per-phase milliseconds.
func BenchmarkFig10Solve(b *testing.B) {
	spec := experiments.Series(1)[0]
	var last *experiments.LinearRun
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunLinear(spec, perf.PaperIBM(), multigrid.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, phase := range []string{"partition", "mesh setup", "fine grid", "matrix setup", "solve"} {
		unit := strings.ReplaceAll(phase, " ", "-") + "-ms"
		b.ReportMetric(float64(last.Wall[phase].Microseconds())/1000, unit)
	}
}

// BenchmarkFig11Efficiency runs the two smallest scaled sizes and reports
// the Figure 11 decomposition: flop scale efficiency and communication
// efficiency of the larger run against the base.
func BenchmarkFig11Efficiency(b *testing.B) {
	specs := experiments.Series(2)
	var e perf.Efficiencies
	for i := 0; i < b.N; i++ {
		base, err := experiments.RunLinear(specs[0], perf.PaperIBM(), multigrid.Options{})
		if err != nil {
			b.Fatal(err)
		}
		run, err := experiments.RunLinear(specs[1], perf.PaperIBM(), multigrid.Options{})
		if err != nil {
			b.Fatal(err)
		}
		e = perf.Decompose(base.Iters, run.Iters, base.SolveFlops, run.SolveFlops,
			base.Free, run.Free, base.Spec.Ranks, run.Spec.Ranks,
			base.RatePerProc(), run.RatePerProc(), run.LoadBalance())
	}
	b.ReportMetric(e.EFs, "eFs")
	b.ReportMetric(e.Ec, "ec")
	b.ReportMetric(e.EIs, "eIs")
	b.ReportMetric(e.Load, "load-bal")
}

// BenchmarkFig12Components reports the Figure 12 component efficiencies
// (paper normalization) between the two smallest sizes.
func BenchmarkFig12Components(b *testing.B) {
	specs := experiments.Series(2)
	var solveEff, setupEff float64
	for i := 0; i < b.N; i++ {
		base, err := experiments.RunLinear(specs[0], perf.PaperIBM(), multigrid.Options{})
		if err != nil {
			b.Fatal(err)
		}
		run, err := experiments.RunLinear(specs[1], perf.PaperIBM(), multigrid.Options{})
		if err != nil {
			b.Fatal(err)
		}
		// Work scaling (1.0 = O(N)); the wall clocks are single-process.
		norm := float64(run.Free) / float64(base.Free)
		solveEff = norm * float64(base.Wall["solve"]) / float64(run.Wall["solve"])
		setupEff = norm * float64(base.Wall["matrix setup"]) / float64(run.Wall["matrix setup"])
	}
	b.ReportMetric(solveEff, "solve-eff")
	b.ReportMetric(setupEff, "matrix-setup-eff")
}

// BenchmarkFig13Nonlinear runs a reduced nonlinear crush (Figure 13) and
// reports the final plastic fraction and iteration totals.
func BenchmarkFig13Nonlinear(b *testing.B) {
	spec := experiments.SizeSpec{
		Name: "bench",
		Cfg:  problems.SpheresConfig{Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2},
	}
	var r *experiments.NonlinearRun
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunNonlinear(spec, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.Stats.Steps[len(r.Stats.Steps)-1].PlasticFrac, "final-plastic-%")
	b.ReportMetric(float64(r.Stats.TotalNewton), "newton-iters")
	b.ReportMetric(float64(r.Stats.TotalPCG), "PCG-iters")
	b.ReportMetric(float64(r.Stats.FirstSolveIters), "first-solve-iters")
}

// BenchmarkFig4ThinBody measures the Figures 4-6 mechanism: MIS with the
// modified graph on a thin slab, reporting face coverage.
func BenchmarkFig4ThinBody(b *testing.B) {
	m := problems.ThinSlab(12, 12, 0.35)
	facets := m.BoundaryFacets()
	adj := mesh.FacetAdjacency(facets)
	faceID, _ := topo.IdentifyFaces(facets, adj, topo.DefaultTOL)
	cls := topo.Classify(m.NumVerts(), facets, faceID)
	g := m.NodeGraph()
	var top, bottom int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg := cls.ModifiedGraph(g)
		order := graph.RankedOrder(cls.Rank, graph.NaturalOrder(g.N))
		mis := graph.MIS(mg, order, cls.Rank, cls.Immortal())
		top, bottom = 0, 0
		for _, v := range mis {
			if m.Coords[v].Z > 0.34 {
				top++
			}
			if m.Coords[v].Z < 0.01 {
				bottom++
			}
		}
	}
	b.ReportMetric(float64(top), "top-verts")
	b.ReportMetric(float64(bottom), "bottom-verts")
}

// BenchmarkMISOrdering is the section 4.7 ablation: natural vs random
// ordering MIS sizes on a uniform hexahedral node graph.
func BenchmarkMISOrdering(b *testing.B) {
	m := mesh.StructuredHex(10, 10, 10, 1, 1, 1, nil)
	g := m.NodeGraph()
	var nat, rnd int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nat = len(graph.MIS(g, graph.NaturalOrder(g.N), nil, nil))
		rnd = len(graph.MIS(g, graph.RandomOrder(g.N, 7), nil, nil))
	}
	b.ReportMetric(float64(nat)/float64(g.N), "natural-ratio")
	b.ReportMetric(float64(rnd)/float64(g.N), "random-ratio")
}

// BenchmarkParallelMIS runs the section 4.2 parallel MIS on 8 simulated
// ranks.
func BenchmarkParallelMIS(b *testing.B) {
	m := mesh.StructuredHex(10, 10, 10, 1, 1, 1, nil)
	g := m.NodeGraph()
	owner := graph.RCB(m.Coords, 8)
	order := graph.NaturalOrder(g.N)
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mis := par.ParallelMIS(par.NewComm(8), g, owner, order, nil, nil)
		size = len(mis)
	}
	b.ReportMetric(float64(size), "MIS-size")
}

// BenchmarkHeadlineEfficiency reports the section 7 headline: the modeled
// flop-rate parallel efficiency at the largest bench size vs the base
// (paper: ~60%).
func BenchmarkHeadlineEfficiency(b *testing.B) {
	specs := experiments.Series(2)
	var eff float64
	for i := 0; i < b.N; i++ {
		base, err := experiments.RunLinear(specs[0], perf.PaperIBM(), multigrid.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last, err := experiments.RunLinear(specs[len(specs)-1], perf.PaperIBM(), multigrid.Options{})
		if err != nil {
			b.Fatal(err)
		}
		eff = last.RatePerProc() / base.RatePerProc()
	}
	b.ReportMetric(100*eff, "parallel-eff-%")
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationCycle compares FMG against V-cycle preconditioning.
func BenchmarkAblationCycle(b *testing.B) {
	for _, bc := range []struct {
		name string
		kind multigrid.CycleKind
	}{{"FMG", multigrid.FMG}, {"VCycle", multigrid.VCycle}} {
		b.Run(bc.name, func(b *testing.B) {
			spec := experiments.Series(1)[0]
			var last *experiments.LinearRun
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunLinear(spec, perf.PaperIBM(), multigrid.Options{Cycle: bc.kind})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(float64(last.Iters), "PCG-iters")
		})
	}
}

// BenchmarkAblationSmoother compares the paper smoother reading (CG wrapped
// block Jacobi) against the stationary variants.
func BenchmarkAblationSmoother(b *testing.B) {
	for _, sc := range []struct {
		name string
		kind multigrid.SmootherKind
	}{
		{"BlockJacobiCG", multigrid.DomainBlockJacobiCG},
		{"BlockJacobi", multigrid.DomainBlockJacobi},
		{"Chebyshev", multigrid.Chebyshev},
	} {
		b.Run(sc.name, func(b *testing.B) {
			spec := experiments.Series(1)[0]
			var last *experiments.LinearRun
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunLinear(spec, perf.PaperIBM(), multigrid.Options{Smoother: sc.kind})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(float64(last.Iters), "PCG-iters")
		})
	}
}

// --- Substrate kernel benches ---

// BenchmarkSpMV measures the sparse matrix-vector kernel on the assembled
// fine operator (the paper reports 36 Mflop/s per PowerPC processor here).
func BenchmarkSpMV(b *testing.B) {
	s := problems.NewSpheresConfig(problems.SpheresConfig{
		Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2,
	})
	p := fem.NewProblem(s.Mesh, s.Models, true)
	k, _, err := p.AssembleTangent(make([]float64, s.Mesh.NumDOF()))
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, k.NCols)
	y := make([]float64, k.NRows)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.MulVec(x, y)
	}
	b.SetBytes(int64(12 * k.NNZ())) // 8B value + 4B index per entry
	b.ReportMetric(float64(k.MulVecFlops())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mflop/s")
}

// BenchmarkSmoother measures one relaxation sweep of each smoother on
// the assembled fine operator. Allocation counts are reported so the
// zero-alloc steady-state guarantee is visible in -benchmem output.
func BenchmarkSmoother(b *testing.B) {
	s := problems.NewSpheresConfig(problems.SpheresConfig{
		Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2,
	})
	p := fem.NewProblem(s.Mesh, s.Models, true)
	k, _, err := p.AssembleTangent(make([]float64, s.Mesh.NumDOF()))
	if err != nil {
		b.Fatal(err)
	}
	n := k.NRows
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%5) - 2
	}
	for _, tc := range []struct {
		name string
		s    smooth.Smoother
	}{
		{"Jacobi", smooth.NewJacobi(k, 2.0/3)},
		{"GaussSeidel", smooth.NewGaussSeidel(k, 1, true)},
		{"Chebyshev", smooth.NewChebyshev(k, 3, 30)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			x := make([]float64, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.s.Smooth(x, rhs, 1)
			}
		})
		// The same sweep with observability recording on, so -benchmem
		// output shows the span overhead (and its zero allocations)
		// next to the uninstrumented number.
		b.Run(tc.name+"/obs", func(b *testing.B) {
			obs.EnableWith(obs.Config{RingCap: 1 << 12})
			defer obs.Disable()
			x := make([]float64, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.s.Smooth(x, rhs, 1)
			}
		})
	}
}

// TestSmootherObsOverhead gates the cost of the observability spans on
// the smoother hot path: with recording enabled, a relaxation sweep may
// be at most 5% slower than with recording off. Minimum-of-batches
// timing on both sides keeps scheduler noise out of the comparison.
func TestSmootherObsOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	s := problems.NewSpheresConfig(problems.SpheresConfig{
		Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2,
	})
	p := fem.NewProblem(s.Mesh, s.Models, true)
	k, _, err := p.AssembleTangent(make([]float64, s.Mesh.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	n := k.NRows
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%5) - 2
	}
	jac := smooth.NewJacobi(k, 2.0/3)
	x := make([]float64, n)

	// Minimum wall time of many fixed-size batches: the most
	// noise-robust estimator for a sub-millisecond kernel.
	const sweepsPerBatch = 10
	const batches = 30
	minBatch := func() time.Duration {
		best := time.Duration(math.MaxInt64)
		for b := 0; b < batches; b++ {
			t0 := time.Now()
			for i := 0; i < sweepsPerBatch; i++ {
				jac.Smooth(x, rhs, 1)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	obs.Disable()
	jac.Smooth(x, rhs, 1) // warm caches before either measurement
	off := minBatch()
	obs.EnableWith(obs.Config{RingCap: 1 << 16})
	defer obs.Disable()
	on := minBatch()
	ratio := float64(on) / float64(off)
	t.Logf("smoother sweep obs on/off: %.4fx (%v vs %v per %d sweeps)", ratio, on, off, sweepsPerBatch)
	if ratio > 1.05 {
		t.Errorf("obs-enabled smoother sweep is %.1f%% slower than disabled, gate is 5%%", 100*(ratio-1))
	}
}

// BenchmarkGalerkin measures the coarse operator triple product R·A·Rᵀ.
func BenchmarkGalerkin(b *testing.B) {
	s := problems.NewSpheresConfig(problems.SpheresConfig{
		Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2,
	})
	p := fem.NewProblem(s.Mesh, s.Models, true)
	k, _, err := p.AssembleTangent(make([]float64, s.Mesh.NumDOF()))
	if err != nil {
		b.Fatal(err)
	}
	h, err := core.Coarsen(s.Mesh, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := h.Grids[1].R
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sparse.Galerkin(r, k)
	}
}

// BenchmarkDelaunay measures the coarse-grid remesher on a random cloud.
func BenchmarkDelaunay(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Vec3, 500)
	for i := range pts {
		pts[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := delaunay.New(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaceID measures the Figure 3 face identification on the model
// problem boundary (including material interfaces).
func BenchmarkFaceID(b *testing.B) {
	s := problems.NewSpheresConfig(problems.SpheresConfig{
		Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2,
	})
	facets := s.Mesh.BoundaryFacets()
	adj := mesh.FacetAdjacency(facets)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, n = topo.IdentifyFaces(facets, adj, topo.DefaultTOL)
	}
	b.ReportMetric(float64(n), "faces")
}

// BenchmarkAssembly measures element integration and assembly (the FEAP
// "fine grid creation" phase).
func BenchmarkAssembly(b *testing.B) {
	s := problems.NewSpheresConfig(problems.SpheresConfig{
		Layers: 3, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2,
	})
	p := fem.NewProblem(s.Mesh, s.Models, true)
	u := make([]float64, s.Mesh.NumDOF())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.AssembleTangent(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEnd is the full public-API pipeline on the quickstart cube.
func BenchmarkEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := NewStructuredHexMesh(8, 8, 8, 1, 1, 1, nil)
		cons := NewConstraints()
		f := make([]float64, m.NumDOF())
		for v, pt := range m.Coords {
			if pt.Z == 0 {
				cons.FixVert(v, 0, 0, 0)
			}
			if pt.Z == 1 {
				f[3*v+2] = -0.001
			}
		}
		solver, err := NewSolver(m, cons, Options{RTol: 1e-6})
		if err != nil {
			b.Fatal(err)
		}
		p := NewProblem(m, []Model{LinearElastic{E: 1, Nu: 0.3}}, false)
		k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := solver.SolveLinear(k, f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAMGCompare runs the section 8 comparison: MIS geometric
// coarsening vs smoothed aggregation on the same operator (E20).
func BenchmarkAMGCompare(b *testing.B) {
	s := problems.NewSpheresConfig(problems.SpheresConfig{
		Layers: 5, ElemsPerLayer: 1, CoreElems: 2, OuterElems: 2,
	})
	p := fem.NewProblem(s.Mesh, s.Models, true)
	u := make([]float64, s.Mesh.NumDOF())
	s.Cons.Scaled(0.1).Apply(u)
	k, fint, err := p.AssembleTangent(u)
	if err != nil {
		b.Fatal(err)
	}
	zero := fem.NewConstraints()
	for d := range s.Cons.Fixed {
		zero.FixDof(d, 0)
	}
	dm := zero.NewDofMap(s.Mesh.NumDOF())
	rhs := make([]float64, len(fint))
	for i := range rhs {
		rhs[i] = -fint[i]
	}
	kred, rred := zero.Reduce(k, rhs, dm)

	b.Run("geometric", func(b *testing.B) {
		var its int
		for i := 0; i < b.N; i++ {
			h, err := core.Coarsen(s.Mesh, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var rs []*sparse.CSR
			for l := 1; l < h.NumLevels(); l++ {
				rr := h.Grids[l].R
				if l == 1 {
					rr = multigrid.CompressCols(rr, dm.Full2Red, dm.NumFree())
				}
				rs = append(rs, rr)
			}
			mg, err := multigrid.New(kred, rs, multigrid.Options{})
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, kred.NRows)
			res := krylov.FPCG(kred, rred, x, mg, 1e-4, 2000)
			if !res.Converged {
				b.Fatal("not converged")
			}
			its = res.Iterations
		}
		b.ReportMetric(float64(its), "PCG-iters")
	})
	b.Run("smoothed-aggregation", func(b *testing.B) {
		var its int
		for i := 0; i < b.N; i++ {
			bnn := aggregation.RigidBodyModes(s.Mesh.Coords, dm.Full2Red, dm.NumFree())
			rs, err := aggregation.BuildRestrictions(kred, bnn, aggregation.Options{})
			if err != nil {
				b.Fatal(err)
			}
			mg, err := multigrid.New(kred, rs, multigrid.Options{})
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, kred.NRows)
			res := krylov.FPCG(kred, rred, x, mg, 1e-4, 2000)
			if !res.Converged {
				b.Fatal("not converged")
			}
			its = res.Iterations
		}
		b.ReportMetric(float64(its), "PCG-iters")
	})
}
