// Command promserve runs the solver as a long-lived HTTP/JSON service:
// POST /v1/solve solves one of the bundled parametric problems, with
// semaphore admission control, optional streamed residual progress
// (application/x-ndjson), and a hierarchy cache keyed by deterministic
// mesh fingerprint so repeated geometries skip mesh setup and Galerkin
// products entirely. Results are bitwise identical to direct promsolve
// runs of the same spec.
//
// Usage:
//
//	promserve [-addr :8080] [-max-concurrent n] [-cache-entries n] [-obs]
//
// Endpoints (one server, one port):
//
//	POST /v1/solve     solve {"problem","size","rtol","cycle","stream",...}
//	GET  /v1/sessions  solves in flight
//	GET  /v1/cache     hierarchy cache contents + hit/miss totals
//	GET  /healthz      liveness + watchdog status (promdebug builds)
//	GET  /debug/vars   expvar, including the obs profile (prometheus_obs)
//	GET  /debug/pprof  runtime profiling
//
// The process shuts down cleanly on SIGINT/SIGTERM: the listener stops
// accepting, in-flight solves drain (bounded by -drain), and the service
// janitor is stopped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prometheus/internal/obs"
	"prometheus/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConc := flag.Int("max-concurrent", 4, "max concurrently admitted solves")
	cacheEntries := flag.Int("cache-entries", 8, "max cached hierarchies")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain timeout for in-flight solves")
	withObs := flag.Bool("obs", true, "record obs events/metrics (published on /debug/vars)")
	flag.Parse()

	if *withObs {
		obs.EnableWith(obs.Config{RingCap: 1 << 17})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svc := serve.New(serve.Config{
		MaxConcurrent:   *maxConc,
		MaxCacheEntries: *cacheEntries,
	})
	defer svc.Close()

	hs := &http.Server{Addr: *addr, Handler: svc.Handler()}
	// Shutdown bridge: when the signal context fires, stop accepting and
	// drain. ListenAndServe below then returns ErrServerClosed and main
	// unwinds through the deferred svc.Close.
	go func() {
		<-ctx.Done()
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "promserve: shutdown: %v\n", err)
		}
	}()

	fmt.Printf("promserve listening on %s (max-concurrent %d, cache %d entries)\n",
		*addr, *maxConc, *cacheEntries)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "promserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("promserve: drained, exiting")
}
