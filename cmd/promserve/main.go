// Command promserve runs the solver as a long-lived HTTP/JSON service:
// POST /v1/solve solves one of the bundled parametric problems, with
// semaphore admission control, optional streamed residual progress
// (application/x-ndjson), and a hierarchy cache keyed by deterministic
// mesh fingerprint so repeated geometries skip mesh setup and Galerkin
// products entirely. Results are bitwise identical to direct promsolve
// runs of the same spec.
//
// Usage:
//
//	promserve [-addr :8080] [-max-concurrent n] [-cache-entries n] [-obs]
//	          [-log text|json] [-log-level info]
//
// Endpoints (one server, one port):
//
//	POST /v1/solve     solve {"problem","size","rtol","cycle","stream",...}
//	GET  /v1/sessions  solves in flight
//	GET  /v1/sessions/{id}/trace   per-request Chrome trace JSON
//	GET  /v1/cache     hierarchy cache contents + hit/miss/eviction totals
//	GET  /metrics      Prometheus text exposition (0.0.4) of the obs registry
//	GET  /healthz      liveness + watchdog status (promdebug builds)
//	GET  /debug/vars   expvar, including the obs profile (prometheus_obs)
//	GET  /debug/pprof  runtime profiling
//
// Every request is traced: a valid inbound W3C traceparent header's
// trace id is adopted, otherwise one is minted; the response echoes a
// traceparent, and every log line for the request carries its trace_id.
//
// The process shuts down cleanly on SIGINT/SIGTERM: the listener stops
// accepting, in-flight solves drain (bounded by -drain), and the service
// janitor is stopped.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prometheus/internal/obs"
	"prometheus/internal/serve"
)

// newLogger builds the process logger: text or JSON records on stderr at
// the requested level, wrapped so records carry the request trace id
// whenever one is in the context.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, err
	}
	ho := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch format {
	case "text":
		h = slog.NewTextHandler(os.Stderr, ho)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, ho)
	default:
		return nil, errors.New("promserve: -log must be text or json")
	}
	return slog.New(serve.NewTraceHandler(h)), nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConc := flag.Int("max-concurrent", 4, "max concurrently admitted solves")
	cacheEntries := flag.Int("cache-entries", 8, "max cached hierarchies")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain timeout for in-flight solves")
	withObs := flag.Bool("obs", true, "record obs events/metrics (published on /debug/vars)")
	logFormat := flag.String("log", "text", "log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	flag.Parse()

	log, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		slog.LogAttrs(context.Background(), slog.LevelError, "bad logging flags", slog.Any("err", err))
		os.Exit(2)
	}
	slog.SetDefault(log)

	if *withObs {
		obs.EnableWith(obs.Config{RingCap: 1 << 17})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	svc := serve.New(serve.Config{
		MaxConcurrent:   *maxConc,
		MaxCacheEntries: *cacheEntries,
		Log:             log,
	})
	defer svc.Close()

	hs := &http.Server{Addr: *addr, Handler: svc.Handler()}
	// Shutdown bridge: when the signal context fires, stop accepting and
	// drain. ListenAndServe below then returns ErrServerClosed and main
	// unwinds through the deferred svc.Close.
	go func() {
		<-ctx.Done()
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(dctx); err != nil {
			log.LogAttrs(context.Background(), slog.LevelError, "shutdown", slog.Any("err", err))
		}
	}()

	log.LogAttrs(ctx, slog.LevelInfo, "listening",
		slog.String("addr", *addr),
		slog.Int("max_concurrent", *maxConc),
		slog.Int("cache_entries", *cacheEntries),
		slog.Bool("obs", *withObs),
	)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.LogAttrs(context.Background(), slog.LevelError, "serve failed", slog.Any("err", err))
		os.Exit(1)
	}
	log.LogAttrs(context.Background(), slog.LevelInfo, "drained, exiting")
}
