// Command meshgen generates the bundled meshes and their coarse-grid
// hierarchies and reports their statistics (the Figure 7 and Figure 9
// artifacts). With -obj it writes Wavefront OBJ files of the boundary of
// every grid, one file per level, for visual inspection.
//
// Usage:
//
//	meshgen [-problem spheres|cube|thinslab] [-size k] [-obj prefix]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"prometheus/internal/core"
	"prometheus/internal/mesh"
	"prometheus/internal/meshio"
	"prometheus/internal/problems"
)

func main() {
	problem := flag.String("problem", "spheres", "problem: spheres, cube, thinslab")
	size := flag.Int("size", 1, "refinement parameter")
	objPrefix := flag.String("obj", "", "write boundary OBJ files with this path prefix")
	writePath := flag.String("write", "", "write the fine mesh in the flat meshio format to this path")
	vtkPrefix := flag.String("vtk", "", "write VTK files of every grid level with this path prefix")
	flag.Parse()

	var m *mesh.Mesh
	switch *problem {
	case "spheres":
		m = problems.NewSpheresConfig(problems.SpheresConfig{
			Layers: 5, ElemsPerLayer: *size, CoreElems: 2 * *size, OuterElems: 2 * *size,
		}).Mesh
	case "cube":
		n := 4 * *size
		m = mesh.StructuredHex(n, n, n, 1, 1, 1, nil)
	case "thinslab":
		m = problems.ThinSlab(8**size, 8**size, 0.35)
	default:
		fmt.Fprintf(os.Stderr, "meshgen: unknown problem %q\n", *problem)
		os.Exit(2)
	}

	if *writePath != "" {
		f, err := os.Create(*writePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshgen: %v\n", err)
			os.Exit(1)
		}
		err = meshio.Write(f, m)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "meshgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d vertices, %d elements)\n", *writePath, m.NumVerts(), m.NumElems())
	}

	h, err := core.Coarsen(m, core.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "meshgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%-6s %10s %10s %8s %8s %6s\n", "level", "vertices", "elements", "ratio", "minQ", "lost")
	counts, ratios := h.VertexReduction()
	for l, g := range h.Grids {
		ratio := "-"
		if l > 0 {
			ratio = fmt.Sprintf("%.3f", ratios[l-1])
		}
		minQ, _ := g.Mesh.Quality()
		fmt.Printf("%-6d %10d %10d %8s %8.2g %6d\n",
			l, counts[l], g.Mesh.NumElems(), ratio, minQ, g.Lost)
	}
	if *vtkPrefix != "" {
		for l, g := range h.Grids {
			name := fmt.Sprintf("%s-level%d.vtk", *vtkPrefix, l)
			f, err := os.Create(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "meshgen: %v\n", err)
				os.Exit(1)
			}
			rank := make([]float64, g.Mesh.NumVerts())
			for v, r := range g.Class.Rank {
				rank[v] = float64(r)
			}
			err = meshio.WriteVTK(f, g.Mesh, map[string][]float64{"class": rank})
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "meshgen: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", name)
		}
	}
	if *objPrefix == "" {
		return
	}
	for l, g := range h.Grids {
		name := fmt.Sprintf("%s-level%d.obj", *objPrefix, l)
		if err := writeOBJ(name, g.Mesh); err != nil {
			fmt.Fprintf(os.Stderr, "meshgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", name)
	}
}

// writeOBJ dumps the boundary facets of a mesh as a Wavefront OBJ surface.
func writeOBJ(path string, m *mesh.Mesh) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriter(f)
	for _, p := range m.Coords {
		fmt.Fprintf(w, "v %g %g %g\n", p.X, p.Y, p.Z)
	}
	for _, fc := range m.BoundaryFacets() {
		fmt.Fprint(w, "f")
		for _, v := range fc.Verts {
			fmt.Fprintf(w, " %d", v+1)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
