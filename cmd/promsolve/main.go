// Command promsolve builds one of the bundled problems, runs the solver
// once, and prints the solve breakdown — the "one linear solve" experiment
// of section 7.1 in miniature, or the full nonlinear crush with -nonlinear.
//
// Usage:
//
//	promsolve [-problem spheres|cube|cantilever] [-size k] [-nonlinear]
//	          [-steps n] [-rtol tol] [-cycle fmg|v]
//	          [-profile] [-profile-dir dir] [-http addr]
//
// -profile records every instrumented phase with the internal/obs
// subsystem and prints the PETSc -log_view-style event table plus the
// measured-counter parallel efficiency figures after the solve.
// -profile-dir additionally writes logview.txt, profile.json and
// trace.json (Chrome trace_event format, open in about:tracing or
// https://ui.perfetto.dev) into the directory. -http serves
// /debug/pprof and /debug/vars (the obs profile is published as the
// expvar "prometheus_obs") on the given address for the whole run.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"time"

	prometheus "prometheus"
	"prometheus/internal/experiments"
	"prometheus/internal/geom"
	"prometheus/internal/graph"
	"prometheus/internal/material"
	"prometheus/internal/meshio"
	"prometheus/internal/obs"
	"prometheus/internal/perf"
	"prometheus/internal/problems"
)

func main() {
	problem := flag.String("problem", "spheres", "problem: spheres, cube, cantilever")
	meshFile := flag.String("mesh", "", "solve on a mesh file (flat meshio format) instead of a generated problem; clamps min-z, loads max-z")
	size := flag.Int("size", 1, "refinement parameter")
	nonlinear := flag.Bool("nonlinear", false, "run the Newton crush instead of one linear solve")
	steps := flag.Int("steps", 10, "load steps for -nonlinear")
	rtol := flag.Float64("rtol", 1e-4, "linear relative tolerance")
	cycle := flag.String("cycle", "fmg", "multigrid cycle: fmg or v")
	profile := flag.Bool("profile", false, "record obs events and print the -log_view-style table after the run")
	profileDir := flag.String("profile-dir", "", "with -profile, write logview.txt, profile.json and trace.json into this directory")
	httpAddr := flag.String("http", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	flag.Parse()

	if *httpAddr != "" {
		obs.PublishExpvar()
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "promsolve: http: %v\n", err)
			}
		}()
		fmt.Printf("serving pprof/expvar on http://%s/debug/pprof and /debug/vars\n", *httpAddr)
	}
	if *profile || *profileDir != "" {
		obs.EnableWith(obs.Config{RingCap: 1 << 17})
	}

	opts := prometheus.Options{RTol: *rtol}
	if *cycle == "v" {
		opts.MG.Cycle = prometheus.VCycle
	}

	var m *prometheus.Mesh
	var cons *prometheus.Constraints
	var models []prometheus.Model
	var load []float64
	hardMat := -1

	if *meshFile != "" {
		f, err := os.Open(*meshFile)
		fail(err)
		mm, err := meshio.Read(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fail(err)
		m = mm
		models = []prometheus.Model{prometheus.LinearElastic{E: 1, Nu: 0.3}}
		cons = prometheus.NewConstraints()
		load = make([]float64, m.NumDOF())
		box := geom.NewAABB(m.Coords)
		for v, pt := range m.Coords {
			if pt.Z < box.Min.Z+1e-9 {
				cons.FixVert(v, 0, 0, 0)
			}
			if pt.Z > box.Max.Z-1e-9 {
				load[3*v+2] = -0.001
			}
		}
	} else {
		switch *problem {
		case "spheres":
			cfg := problems.SpheresConfig{
				Layers: 5, ElemsPerLayer: *size, CoreElems: 2 * *size, OuterElems: 2 * *size,
			}
			s := problems.NewSpheresConfig(cfg)
			s.Models[material.MatHard] = material.J2Plasticity{
				E: 1, Nu: 0.3, SigmaY: experiments.ScaledYieldStress(cfg), H: 0.002,
			}
			m, cons, models = s.Mesh, s.Cons, s.Models
			hardMat = s.HardMat
		case "cube":
			c := problems.NewCube(4**size, prometheus.LinearElastic{E: 1, Nu: 0.3}, -0.001)
			m, cons, models, load = c.Mesh, c.Cons, c.Models, c.Load
		case "cantilever":
			c := problems.NewCantilever(6**size, *size, *size, 6, prometheus.LinearElastic{E: 1, Nu: 0.3}, -0.0001)
			m, cons, models, load = c.Mesh, c.Cons, c.Models, c.Load
		default:
			fmt.Fprintf(os.Stderr, "promsolve: unknown problem %q\n", *problem)
			os.Exit(2)
		}
	}

	fmt.Printf("problem %s: %d vertices, %d elements, %d dof\n",
		*problem, m.NumVerts(), m.NumElems(), m.NumDOF())

	t0 := time.Now()
	solver, err := prometheus.NewSolver(m, cons, opts)
	fail(err)
	counts, ratios := solver.VertexReduction()
	fmt.Printf("mesh setup: %v, %d levels, vertices per level %v (ratios %v)\n",
		time.Since(t0).Round(time.Millisecond), solver.NumLevels(), counts, fmtRatios(ratios))

	bbar := *problem == "spheres"
	p := prometheus.NewProblem(m, models, bbar)

	if *nonlinear {
		t1 := time.Now()
		_, stats, err := solver.SolveNonlinear(p, prometheus.NewtonConfig{Steps: *steps}, hardMat)
		fail(err)
		fmt.Printf("nonlinear solve: %v\n", time.Since(t1).Round(time.Millisecond))
		for i, ss := range stats.Steps {
			fmt.Printf("  step %2d: %d Newton its, PCG %v, plastic %.1f%%\n",
				i+1, ss.NewtonIters, ss.PCGIters, 100*ss.PlasticFrac)
		}
		fmt.Printf("totals: %d Newton its, %d PCG its, first solve %d its\n",
			stats.TotalNewton, stats.TotalPCG, stats.FirstSolveIters)
		if *profile || *profileDir != "" {
			reportProfile(*profileDir, nil, nil)
		}
		waitHTTP(*httpAddr)
		return
	}

	t1 := time.Now()
	u := make([]float64, m.NumDOF())
	cons.Scaled(0.1).Apply(u)
	k, fint, err := p.AssembleTangent(u)
	fail(err)
	fmt.Printf("fine grid creation: %v (%d nonzeros)\n", time.Since(t1).Round(time.Millisecond), k.NNZ())

	f := load
	if f == nil {
		f = make([]float64, m.NumDOF())
		for i := range f {
			f[i] = -fint[i]
		}
	}
	t2 := time.Now()
	_, res, err := solver.SolveLinear(k, f)
	fail(err)
	fmt.Printf("matrix setup + solve: %v\n", time.Since(t2).Round(time.Millisecond))
	fmt.Printf("MG-PCG: %d iterations to rtol=%g on %d levels; %.1f Mflop solve, %.1f Mflop setup\n",
		res.Iterations, *rtol, res.Levels,
		float64(res.SolveFlops)/1e6, float64(res.SetupFlops)/1e6)

	if *profile || *profileDir != "" {
		// Dof ownership for the measured parallel phase: RCB over the
		// mesh vertices, three dofs per vertex.
		owner := make([]int, m.NumDOF())
		for v, o := range graph.RCB(m.Coords, profileRanks) {
			owner[3*v] = o
			owner[3*v+1] = o
			owner[3*v+2] = o
		}
		reportProfile(*profileDir, k, owner)
	}
	waitHTTP(*httpAddr)
}

// profileRanks is the simulated rank count of the -profile measured
// halo phase (the measured-counter efficiency figures).
const profileRanks = 4

// reportProfile prints the obs event table and, when k is non-nil, the
// measured-counter parallel efficiency of a halo SpMV phase over k.
// With dir non-empty it also writes logview.txt, profile.json and
// trace.json (Chrome trace_event format) there.
func reportProfile(dir string, k *prometheus.CSR, owner []int) {
	// Snapshot before the halo phase below resets the recording.
	p := obs.Snapshot()
	fmt.Println()
	fail(p.WriteLogView(os.Stdout))
	if dir != "" {
		fail(os.MkdirAll(dir, 0o755))
		writeFile := func(name string, write func(f *os.File) error) {
			f, err := os.Create(filepath.Join(dir, name))
			fail(err)
			err = write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			fail(err)
		}
		writeFile("logview.txt", func(f *os.File) error { return p.WriteLogView(f) })
		writeFile("profile.json", func(f *os.File) error { return p.WriteJSON(f) })
		writeFile("trace.json", func(f *os.File) error { return p.WriteChromeTrace(f) })
		fmt.Printf("wrote %s/{logview.txt,profile.json,trace.json}\n", dir)
	}
	if k == nil {
		return
	}
	eff, err := experiments.MeasuredHaloEfficiency(k, owner, profileRanks, 20, perf.PaperIBM())
	fail(err)
	fmt.Printf("measured halo SpMV on %d ranks: %d flops, %d msgs, %d bytes\n",
		eff.Ranks, eff.Flops, eff.Msgs, eff.Bytes)
	fmt.Printf("  efficiency (IBM model): load %.3f  e_c %.3f  e^I_s %.3f  e^F_s %.3f  total %.3f\n",
		eff.Load, eff.Eff.Ec, eff.Eff.EIs, eff.Eff.EFs, eff.Eff.Total)
}

// waitHTTP keeps the process alive after the run when -http is set, so
// the pprof and expvar endpoints stay inspectable. Interrupt to exit.
func waitHTTP(addr string) {
	if addr == "" {
		return
	}
	fmt.Printf("run complete; still serving http://%s (interrupt to exit)\n", addr)
	select {}
}

func fmtRatios(r []float64) []string {
	out := make([]string, len(r))
	for i, v := range r {
		out[i] = fmt.Sprintf("%.3f", v)
	}
	return out
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "promsolve: %v\n", err)
		os.Exit(1)
	}
}
