// Command promlint is the project's custom static analyzer. It walks the
// module with the stdlib go/parser + go/types toolchain and enforces the
// solver-specific correctness rules (see internal/lint): float equality,
// library panic conventions, unchecked errors, naked type assertions on
// the par hot paths, and exported API documentation.
//
// Usage:
//
//	go run ./cmd/promlint [-tags taglist] [packages]
//
// Packages default to ./... . Exit status is 0 when the tree is clean,
// 1 when findings are reported, and 2 on a load or type-check failure.
// Findings are suppressed in place with "//promlint:ignore <rule>
// <reason>" on the offending line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"

	"prometheus/internal/lint"
)

func main() {
	tags := flag.String("tags", "", "build tags forwarded to package loading")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: promlint [-tags taglist] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	pkgs, err := lint.Load(".", flag.Args(), *tags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(2)
	}
	issues := lint.Run(pkgs, lint.DefaultRules())
	for _, iss := range issues {
		fmt.Println(iss)
	}
	if len(issues) > 0 {
		fmt.Fprintf(os.Stderr, "promlint: %d finding(s) in %d package(s)\n", len(issues), len(pkgs))
		os.Exit(1)
	}
}
