// Command promlint is the project's custom static analyzer. It walks the
// module with the stdlib go/parser + go/types toolchain and enforces the
// solver-specific correctness rules (see internal/lint): float equality,
// library panic conventions, unchecked errors (including defer/go),
// naked type assertions on the par hot paths, exported API
// documentation, per-iteration allocations in kernel hot paths,
// Comm protocol discipline, and check.Enabled guards.
//
// Usage:
//
//	go run ./cmd/promlint [-tags taglist] [-rules list] [-json] [packages]
//	go run ./cmd/promlint -bce [-tags taglist]
//	go run ./cmd/promlint -bce-update [-tags taglist]
//
// Packages default to ./... . Exit status is 0 when the tree is clean,
// 1 when findings are reported, 2 on a load or type-check failure, and
// 3 when -bce detects a bounds-check regression against the committed
// baseline (internal/lint/testdata/bce_baseline.txt).
// Findings are suppressed in place with "//promlint:ignore <rule>
// <reason>" on the offending line or the line above; -json reports how
// many findings the directives silenced.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"prometheus/internal/lint"
)

func main() {
	tags := flag.String("tags", "", "build tags forwarded to package loading")
	jsonOut := flag.Bool("json", false, "emit findings and suppression accounting as JSON")
	rulesFlag := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	bce := flag.Bool("bce", false, "diff kernel bounds-check counts against the committed baseline")
	bceUpdate := flag.Bool("bce-update", false, "regenerate the bounds-check baseline file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: promlint [-tags taglist] [-rules list] [-json] [packages]\n")
		fmt.Fprintf(os.Stderr, "       promlint -bce | -bce-update [-tags taglist]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *bce || *bceUpdate {
		os.Exit(runBCE(*tags, *bceUpdate))
	}

	rules, err := selectRules(*rulesFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(".", flag.Args(), *tags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		os.Exit(2)
	}
	kept, suppressed := lint.RunAll(pkgs, rules)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lint.NewJSONReport(kept, suppressed)); err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, iss := range kept {
			fmt.Println(iss)
		}
	}
	if len(kept) > 0 {
		fmt.Fprintf(os.Stderr, "promlint: %d finding(s), %d suppressed, in %d package(s)\n",
			len(kept), len(suppressed), len(pkgs))
		os.Exit(1)
	}
}

// selectRules filters DefaultRules by the -rules flag. Unknown names are
// rejected with the valid rule list in the message (a typo must not
// silently shrink the rule set), empty list segments are skipped, and a
// selection that ends up empty is an error rather than a vacuous clean run.
func selectRules(list string) ([]lint.Rule, error) {
	all := lint.DefaultRules()
	if list == "" {
		return all, nil
	}
	byName := make(map[string]lint.Rule, len(all))
	valid := make([]string, 0, len(all))
	for _, r := range all {
		byName[r.Name()] = r
		valid = append(valid, r.Name())
	}
	var out []lint.Rule
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q; valid rules: %s", name, strings.Join(valid, ", "))
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-rules %q selects no rules; valid rules: %s", list, strings.Join(valid, ", "))
	}
	return out, nil
}

// runBCE implements -bce (diff against baseline, exit 3 on regression)
// and -bce-update (rewrite the baseline).
func runBCE(tags string, update bool) int {
	current, err := lint.BCEReport(".", nil, tags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		return 2
	}
	if update {
		if err := os.WriteFile(lint.DefaultBCEBaselinePath, []byte(lint.FormatBCEBaseline(current)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
			return 2
		}
		fmt.Printf("promlint: wrote %s\n", lint.DefaultBCEBaselinePath)
		return 0
	}
	data, err := os.ReadFile(lint.DefaultBCEBaselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v (run promlint -bce-update to create it)\n", err)
		return 2
	}
	baseline, err := lint.ParseBCEBaseline(string(data))
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
		return 2
	}
	regressions, improvements := lint.DiffBCEBaseline(baseline, current)
	for _, s := range improvements {
		fmt.Printf("improved: %s\n", s)
	}
	for _, s := range regressions {
		fmt.Printf("REGRESSION: %s\n", s)
	}
	switch {
	case len(regressions) > 0:
		fmt.Fprintf(os.Stderr, "promlint: %d bounds-check regression(s) vs %s\n",
			len(regressions), lint.DefaultBCEBaselinePath)
		return 3
	case len(improvements) > 0:
		fmt.Fprintf(os.Stderr, "promlint: bounds checks improved; regenerate the baseline with -bce-update to lock it in\n")
	}
	return 0
}
