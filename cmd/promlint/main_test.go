package main

import (
	"strings"
	"testing"

	"prometheus/internal/lint"
)

func TestSelectRulesDefault(t *testing.T) {
	rules, err := selectRules("")
	if err != nil {
		t.Fatalf("selectRules(\"\") error: %v", err)
	}
	if len(rules) != len(lint.DefaultRules()) {
		t.Fatalf("empty flag must select all %d rules, got %d", len(lint.DefaultRules()), len(rules))
	}
}

func TestSelectRulesByName(t *testing.T) {
	rules, err := selectRules(" float-equality , krylov-precision ,")
	if err != nil {
		t.Fatalf("selectRules error: %v", err)
	}
	if len(rules) != 2 || rules[0].Name() != "float-equality" || rules[1].Name() != "krylov-precision" {
		names := make([]string, len(rules))
		for i, r := range rules {
			names[i] = r.Name()
		}
		t.Fatalf("selected %v, want [float-equality krylov-precision]", names)
	}
}

func TestSelectRulesUnknownListsValidNames(t *testing.T) {
	_, err := selectRules("float-equality,no-such-rule")
	if err == nil {
		t.Fatal("unknown rule name must be rejected")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-rule"`) {
		t.Errorf("error %q does not name the offending rule", msg)
	}
	// The message must enumerate the valid rules so the typo is fixable
	// without reading the source.
	for _, want := range []string{"float-equality", "shared-write", "narrowing-discipline", "accumulation-width", "krylov-precision"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not list valid rule %q", msg, want)
		}
	}
}

func TestSelectRulesEmptySelection(t *testing.T) {
	for _, list := range []string{",", " , ,"} {
		if _, err := selectRules(list); err == nil {
			t.Errorf("selectRules(%q) must reject an empty selection", list)
		}
	}
}
