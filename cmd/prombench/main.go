// Command prombench regenerates the tables and figures of the paper's
// evaluation (section 7) on laptop-scale reproductions of the model
// problem. Run with -exp all (default) for the full suite or name a single
// experiment; -full enlarges the scaled series and uses the paper's ten
// load steps in the nonlinear study.
//
// Usage:
//
//	prombench [-exp name] [-full] [-csv path]
//
// Experiments: table1, table2, fig7, fig9, fig10, fig11, fig12, fig13,
// thinbody, ordering, parmis, amg, phases, headline, ablations,
// blockbench, obsbench, parbench, mixedbench, mfbench, servebench,
// serveobs, all.
// -csv additionally writes the scaled series as CSV for plotting.
// -json writes a kernel study as JSON to the given path: the obsbench
// observability report when -exp obsbench, the parbench real-core
// speedup study when -exp parbench, the mixedbench mixed-precision
// coarse-level study when -exp mixedbench, the mfbench matrix-free
// storage-mode study when -exp mfbench, the servebench
// solver-as-a-service study when -exp servebench, the request-scoped
// observability overhead study when -exp serveobs, otherwise the
// blockbench CSR-vs-BSR study (schemas in EXPERIMENTS.md).
// -obs enables the observability subsystem for the whole run and prints
// the -log_view-style event table after the experiments finish.
package main

import (
	"flag"
	"fmt"
	"os"

	"prometheus/internal/experiments"
	"prometheus/internal/experiments/servebench"
	"prometheus/internal/multigrid"
	"prometheus/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see package doc)")
	full := flag.Bool("full", false, "run the larger series and full load schedule")
	csvPath := flag.String("csv", "", "also write the scaled series as CSV to this path")
	jsonPath := flag.String("json", "", "write the obsbench (with -exp obsbench) or blockbench kernel study as JSON to this path")
	obsOn := flag.Bool("obs", false, "record obs events for the run and print the event table at the end")
	flag.Parse()

	if *obsOn {
		obs.Enable()
	}

	maxK := 2
	steps := 4
	nlK := 1
	if *full {
		maxK = 3
		steps = 10
		nlK = 2
	}

	w := os.Stdout
	var runs []*experiments.LinearRun
	var blockRep *experiments.BlockBenchReport
	var obsRep *experiments.ObsBenchReport
	var parRep *experiments.ParBenchReport
	var mixedRep *experiments.MixedBenchReport
	var mfRep *experiments.MFBenchReport
	var serveRep *servebench.Report
	var serveObsRep *servebench.ObsReport
	needSeries := func() error {
		if runs != nil {
			return nil
		}
		var err error
		runs, err = experiments.RunSeries(maxK, multigrid.Options{})
		return err
	}

	run := func(name string) error {
		switch name {
		case "table1":
			return experiments.Table1(w)
		case "table2":
			if err := needSeries(); err != nil {
				return err
			}
			return experiments.Table2(w, runs)
		case "fig7":
			return experiments.Fig7(w)
		case "fig9":
			return experiments.Fig9(w)
		case "fig10":
			if err := needSeries(); err != nil {
				return err
			}
			return experiments.Fig10(w, runs)
		case "fig11":
			if err := needSeries(); err != nil {
				return err
			}
			return experiments.Fig11(w, runs)
		case "fig12":
			if err := needSeries(); err != nil {
				return err
			}
			return experiments.Fig12(w, runs)
		case "fig13":
			return experiments.Fig13(w, nlK, steps)
		case "thinbody":
			return experiments.ThinBody(w)
		case "ordering":
			return experiments.Ordering(w)
		case "parmis":
			return experiments.ParallelMISStudy(w)
		case "amg":
			return experiments.AMGCompare(w)
		case "phases":
			return experiments.Amortization(w)
		case "headline":
			if err := needSeries(); err != nil {
				return err
			}
			return experiments.Headline(w, runs)
		case "blockbench":
			rep, err := experiments.BlockBench()
			if err != nil {
				return err
			}
			blockRep = rep
			experiments.BlockBenchTable(w, rep)
			return nil
		case "obsbench":
			rep, err := experiments.ObsBench()
			if err != nil {
				return err
			}
			obsRep = rep
			experiments.ObsBenchTable(w, rep)
			return nil
		case "parbench":
			rep, err := experiments.ParBench()
			if err != nil {
				return err
			}
			parRep = rep
			experiments.ParBenchTable(w, rep)
			return nil
		case "mixedbench":
			rep, err := experiments.MixedBench()
			if err != nil {
				return err
			}
			mixedRep = rep
			experiments.MixedBenchTable(w, rep)
			return nil
		case "mfbench":
			rep, err := experiments.MFBench()
			if err != nil {
				return err
			}
			mfRep = rep
			experiments.MFBenchTable(w, rep)
			return nil
		case "servebench":
			rep, err := servebench.Run()
			if err != nil {
				return err
			}
			serveRep = rep
			servebench.Table(w, rep)
			return nil
		case "serveobs":
			rep, err := servebench.RunObs()
			if err != nil {
				return err
			}
			serveObsRep = rep
			servebench.ObsTable(w, rep)
			return nil
		case "ablations":
			if err := experiments.AblationTOL(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
			if err := experiments.AblationReclassify(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
			if err := experiments.AblationBlocks(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
			if err := experiments.AblationCycle(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
			return experiments.AblationKrylov(w)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table1", "fig9", "fig7", "table2", "fig10", "fig11",
			"fig12", "headline", "fig13", "thinbody", "ordering", "parmis", "amg", "phases", "ablations", "blockbench", "obsbench", "parbench", "mixedbench", "mfbench", "servebench", "serveobs"}
	}
	if *jsonPath != "" && *exp != "blockbench" && *exp != "obsbench" && *exp != "parbench" && *exp != "mixedbench" && *exp != "mfbench" && *exp != "servebench" && *exp != "serveobs" && *exp != "all" {
		names = append(names, "blockbench")
	}
	for i, name := range names {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "prombench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *csvPath != "" {
		if err := needSeries(); err != nil {
			fmt.Fprintf(os.Stderr, "prombench: csv: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prombench: csv: %v\n", err)
			os.Exit(1)
		}
		err = experiments.WriteSeriesCSV(f, runs)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "prombench: csv: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\nwrote %s\n", *csvPath)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prombench: json: %v\n", err)
			os.Exit(1)
		}
		switch {
		case *exp == "obsbench":
			err = experiments.WriteObsBenchJSON(f, obsRep)
		case *exp == "parbench":
			err = experiments.WriteParBenchJSON(f, parRep)
		case *exp == "mixedbench":
			err = experiments.WriteMixedBenchJSON(f, mixedRep)
		case *exp == "mfbench":
			err = experiments.WriteMFBenchJSON(f, mfRep)
		case *exp == "servebench":
			err = servebench.WriteJSON(f, serveRep)
		case *exp == "serveobs":
			err = servebench.WriteObsJSON(f, serveObsRep)
		default:
			err = experiments.WriteBlockBenchJSON(f, blockRep)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "prombench: json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "\nwrote %s\n", *jsonPath)
	}
	if *obsOn {
		fmt.Fprintln(w)
		if err := obs.Snapshot().WriteLogView(w); err != nil {
			fmt.Fprintf(os.Stderr, "prombench: obs: %v\n", err)
			os.Exit(1)
		}
	}
}
