package prometheus

import (
	"math"
	"math/rand"
	"testing"
)

// buildCube sets up the quickstart problem via the public API only.
func buildCube(t *testing.T, n int) (*Mesh, *Constraints, []float64) {
	t.Helper()
	m := NewStructuredHexMesh(n, n, n, 1, 1, 1, nil)
	cons := NewConstraints()
	f := make([]float64, m.NumDOF())
	for v, p := range m.Coords {
		if p.Z == 0 {
			cons.FixVert(v, 0, 0, 0)
		}
		if p.Z == 1 {
			f[3*v+2] = -0.001
		}
	}
	return m, cons, f
}

func TestPublicAPISolveLinear(t *testing.T) {
	m, cons, f := buildCube(t, 5)
	solver, err := NewSolver(m, cons, Options{RTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if solver.NumLevels() < 2 {
		t.Fatal("no coarsening")
	}
	p := NewProblem(m, []Model{LinearElastic{E: 1, Nu: 0.3}}, false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	u, res, err := solver.SolveLinear(k, f)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations == 0 || res.Iterations > 100 {
		t.Fatalf("result = %+v", res)
	}
	// The top face moves down; the bottom stays clamped.
	for v, pt := range m.Coords {
		if pt.Z == 0 {
			if u[3*v] != 0 || u[3*v+1] != 0 || u[3*v+2] != 0 {
				t.Fatal("clamped vertex moved")
			}
		}
		if pt.X == 0.4 && pt.Y == 0.4 && pt.Z == 1 {
			if u[3*v+2] >= 0 {
				t.Fatal("top should move down")
			}
		}
	}
	if res.SolveFlops <= 0 || res.SetupFlops <= 0 || res.Levels < 2 {
		t.Fatalf("instrumentation: %+v", res)
	}
	counts, ratios := solver.VertexReduction()
	if len(counts) != solver.NumLevels() || len(ratios) != solver.NumLevels()-1 {
		t.Fatal("VertexReduction shape")
	}
}

// TestPreconditionerAutoBlocks checks the storage decision at the public
// surface: a node-aligned constraint set (FixVert only) re-blocks the
// reduced tangent into 3x3 BSR, while component-wise constraints keep CSR.
func TestPreconditionerAutoBlocks(t *testing.T) {
	m, cons, f := buildCube(t, 4)
	solver, err := NewSolver(m, cons, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProblem(m, []Model{LinearElastic{E: 1, Nu: 0.3}}, false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	kred, _ := cons.Reduce(k, f, solver.dofMap)
	mg, err := solver.Preconditioner(kred)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mg.Levels[0].A.(*BSR); !ok {
		t.Fatalf("node-aligned problem: fine level is %T, want *BSR", mg.Levels[0].A)
	}

	// Fix a single component of one free vertex: no longer node-aligned.
	cons2 := NewConstraints()
	for d, v := range cons.Fixed {
		cons2.FixDof(d, v)
	}
	var loose int
	for v, pt := range m.Coords {
		if pt.Z != 0 {
			loose = v
			break
		}
	}
	cons2.FixDof(3*loose, 0)
	solver2, err := NewSolver(m, cons2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kred2, _ := cons2.Reduce(k, f, solver2.dofMap)
	mg2, err := solver2.Preconditioner(kred2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mg2.Levels[0].A.(*CSR); !ok {
		t.Fatalf("component-constrained problem: fine level is %T, want *CSR", mg2.Levels[0].A)
	}
}

func TestPublicAPINonlinear(t *testing.T) {
	m, cons, _ := buildCube(t, 3)
	// Displacement-driven crush of a plastic cube.
	for v, pt := range m.Coords {
		if pt.Z == 1 {
			cons.FixDof(3*v+2, -0.02)
		}
	}
	solver, err := NewSolver(m, cons, Options{Coarsen: CoarsenOptions{MinCoarse: 20}})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProblem(m, []Model{J2Plasticity{E: 1, Nu: 0.3, SigmaY: 1e-3, H: 0.002}}, false)
	u, stats, err := solver.SolveNonlinear(p, NewtonConfig{Steps: 2, MaxNewton: 15}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Steps) != 2 || stats.TotalNewton < 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// 2% crush with 0.1% yield strain: everything yields.
	if stats.Steps[1].PlasticFrac < 0.5 {
		t.Fatalf("plastic fraction = %v", stats.Steps[1].PlasticFrac)
	}
	// Prescribed displacement honoured.
	for v, pt := range m.Coords {
		if pt.Z == 1 && math.Abs(u[3*v+2]+0.02) > 1e-12 {
			t.Fatal("prescribed crush not applied")
		}
	}
}

func TestTableOneMaterials(t *testing.T) {
	db := TableOneMaterials()
	if len(db) != 2 {
		t.Fatal("Table 1 has two materials")
	}
}

func TestSolveLinearReportsNonConvergence(t *testing.T) {
	m, cons, f := buildCube(t, 4)
	solver, err := NewSolver(m, cons, Options{RTol: 1e-30, MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProblem(m, []Model{LinearElastic{E: 1, Nu: 0.3}}, false)
	k, _, _ := p.AssembleTangent(make([]float64, m.NumDOF()))
	_, res, err := solver.SolveLinear(k, f)
	if err == nil || res.Converged {
		t.Fatal("expected non-convergence error")
	}
}

func TestSmoothedAggregationHierarchy(t *testing.T) {
	m, cons, f := buildCube(t, 5)
	solver, err := NewSolver(m, cons, Options{
		Hierarchy: SmoothedAggregation, RTol: 1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c, r := solver.VertexReduction(); c != nil || r != nil {
		t.Fatal("SA hierarchy has no mesh statistics")
	}
	p := NewProblem(m, []Model{LinearElastic{E: 1, Nu: 0.3}}, false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	u, res, err := solver.SolveLinear(k, f)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 60 {
		t.Fatalf("SA result = %+v", res)
	}
	if solver.NumLevels() < 2 {
		t.Fatal("no SA levels built")
	}
	// Cross-check against the geometric hierarchy's solution.
	geo, err := NewSolver(m, cons, Options{RTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	ug, _, err := geo.SolveLinear(k, f)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	norm := 0.0
	for i := range u {
		d := u[i] - ug[i]
		diff += d * d
		norm += ug[i] * ug[i]
	}
	if diff > 1e-10*norm {
		t.Fatalf("SA and geometric solutions disagree: %v vs %v", diff, norm)
	}
}

func TestPublicAPIHex20MultigridSolve(t *testing.T) {
	// End-to-end: quadratic elements through the whole pipeline — MIS
	// coarsening on the 20-node node graph, Delaunay remeshing,
	// tetrahedral restriction of all (corner and midside) nodes, Galerkin
	// hierarchy, MG-preconditioned CG.
	m := NewStructuredHex20Mesh(4, 4, 4, 1, 1, 1, nil)
	cons := NewConstraints()
	f := make([]float64, m.NumDOF())
	for v, p := range m.Coords {
		if p.Z == 0 {
			cons.FixVert(v, 0, 0, 0)
		}
		if p.Z == 1 {
			f[3*v+2] = -0.0005
		}
	}
	solver, err := NewSolver(m, cons, Options{RTol: 1e-8, Coarsen: CoarsenOptions{MinCoarse: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if solver.NumLevels() < 2 {
		t.Fatal("Hex20 mesh did not coarsen")
	}
	p := NewProblem(m, []Model{LinearElastic{E: 1, Nu: 0.3}}, false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	u, res, err := solver.SolveLinear(k, f)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 120 {
		t.Fatalf("Hex20 MG solve: %+v", res)
	}
	// Downward deflection at the top.
	for v, pt := range m.Coords {
		if pt.X == 0.5 && pt.Y == 0.5 && pt.Z == 1 {
			if u[3*v+2] >= 0 {
				t.Fatal("top should deflect down")
			}
		}
	}
	t.Logf("Hex20: %d dof, %d levels, %d iterations", m.NumDOF(), res.Levels, res.Iterations)
}

func TestPublicAPITetrahedralFineMesh(t *testing.T) {
	// The paper's pipeline takes any unstructured mesh: run a genuinely
	// simplicial, distorted fine grid end to end.
	hex := NewStructuredHexMesh(5, 5, 5, 1, 1, 1, nil)
	// Distort the interior so nothing is axis-aligned.
	rng := rand.New(rand.NewSource(77))
	for v, p := range hex.Coords {
		interior := p.X > 0 && p.X < 1 && p.Y > 0 && p.Y < 1 && p.Z > 0 && p.Z < 1
		if interior {
			hex.Coords[v] = p.Add(Vec3{
				X: (rng.Float64() - 0.5) * 0.08,
				Y: (rng.Float64() - 0.5) * 0.08,
				Z: (rng.Float64() - 0.5) * 0.08,
			})
		}
	}
	m := HexMeshToTets(hex)
	cons := NewConstraints()
	f := make([]float64, m.NumDOF())
	for v, p := range m.Coords {
		if p.Z == 0 {
			cons.FixVert(v, 0, 0, 0)
		}
		if p.Z == 1 {
			f[3*v+2] = -0.001
		}
	}
	solver, err := NewSolver(m, cons, Options{RTol: 1e-8, Coarsen: CoarsenOptions{MinCoarse: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if solver.NumLevels() < 2 {
		t.Fatal("tet mesh did not coarsen")
	}
	p := NewProblem(m, []Model{LinearElastic{E: 1, Nu: 0.3}}, false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := solver.SolveLinear(k, f)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 120 {
		t.Fatalf("tet pipeline: %+v", res)
	}
	t.Logf("tet fine mesh: %d dof, %d levels, %d its", m.NumDOF(), res.Levels, res.Iterations)
}
