// Package prometheus is a Go reproduction of the parallel multigrid solver
// for 3D unstructured finite element problems of Adams & Demmel (SC 1999)
// — the Prometheus solver. It automatically builds a hierarchy of coarse
// grids from a fine unstructured mesh using maximal independent sets with
// geometric heuristics (vertex classification, face identification,
// modified MIS graphs), remeshes the coarse vertex sets with Delaunay
// tetrahedra, constructs restriction operators from linear tetrahedral
// shape functions, forms Galerkin coarse operators R·A·Rᵀ, and solves with
// conjugate gradients preconditioned by one full multigrid cycle.
//
// The public API wraps the internal packages: build a mesh (or use one of
// the bundled problem generators), define constraints and materials,
// create a Solver (which runs the one-time "mesh setup" — the coarsening),
// then solve linear systems or run the Newton driver for nonlinear
// problems. See the examples directory for complete programs.
package prometheus

import (
	"fmt"

	"prometheus/internal/aggregation"
	"prometheus/internal/core"
	"prometheus/internal/fem"
	"prometheus/internal/geom"
	"prometheus/internal/krylov"
	"prometheus/internal/material"
	"prometheus/internal/mesh"
	"prometheus/internal/multigrid"
	"prometheus/internal/newton"
	"prometheus/internal/sparse"
)

// Re-exported core types: these aliases form the public surface of the
// library; user code never imports the internal packages.
type (
	// Vec3 is a 3D point/vector.
	Vec3 = geom.Vec3
	// Mesh is an unstructured Hex8/Tet4 finite element mesh.
	Mesh = mesh.Mesh
	// Constraints holds Dirichlet boundary conditions.
	Constraints = fem.Constraints
	// Problem couples a mesh with materials and integration-point state.
	Problem = fem.Problem
	// Model is a constitutive model.
	Model = material.Model
	// CSR is a sparse matrix in compressed sparse row form.
	CSR = sparse.CSR
	// BSR is a block compressed sparse row matrix (3x3 node blocks for
	// elasticity) — the PETSc BAIJ analogue the paper credits for its
	// per-processor Mflop rate.
	BSR = sparse.BSR
	// Operator is the storage-agnostic sparse operator interface the
	// solver stack is written against; CSR, BSR and the matrix-free
	// EBEOperator all implement it.
	Operator = sparse.Operator
	// EBEOperator is the matrix-free element-by-element fine operator:
	// per-element stiffnesses applied gather/scatter with no assembled
	// fine-grid matrix (fem.EBEOperator). Build one with
	// Solver.MatrixFreeSystem.
	EBEOperator = fem.EBEOperator
	// StorageKind selects the per-level operator storage of the multigrid
	// hierarchy (multigrid.StorageKind); set it on MGOptions.Storage.
	StorageKind = multigrid.StorageKind
	// CoarsenOptions controls the MIS coarsening (core.Options).
	CoarsenOptions = core.Options
	// MGOptions controls the multigrid cycle (multigrid.Options).
	MGOptions = multigrid.Options
	// NewtonConfig drives the nonlinear solver (newton.Config).
	NewtonConfig = newton.Config
	// NewtonStats reports the nonlinear solve (newton.Stats).
	NewtonStats = newton.Stats
	// Hierarchy is the coarse grid stack built by the solver.
	Hierarchy = core.Hierarchy
	// LinearElastic, NeoHookean and J2Plasticity are the bundled material
	// models (Table 1 of the paper).
	LinearElastic = material.LinearElastic
	// NeoHookean is the compressible hyperelastic model.
	NeoHookean = material.NeoHookean
	// J2Plasticity is radial-return plasticity with kinematic hardening.
	J2Plasticity = material.J2Plasticity
)

// Cycle kinds for MGOptions.Cycle.
const (
	FMG    = multigrid.FMG
	VCycle = multigrid.VCycle
	WCycle = multigrid.WCycle
)

// Storage modes for MGOptions.Storage: assembled scalar rows, assembled
// 3x3 node blocks, or the matrix-free element-by-element fine level.
const (
	StorageAuto       = multigrid.StorageAuto
	StorageCSR        = multigrid.StorageCSR
	StorageBSR        = multigrid.StorageBSR
	StorageMatrixFree = multigrid.StorageMatrixFree
)

// NewStructuredHexMesh builds an nx×ny×nz hexahedral mesh of a box; matFn
// (optional) assigns material ids by element centroid.
func NewStructuredHexMesh(nx, ny, nz int, lx, ly, lz float64, matFn func(Vec3) int) *Mesh {
	return mesh.StructuredHex(nx, ny, nz, lx, ly, lz, matFn)
}

// NewStructuredHex20Mesh builds an nx×ny×nz 20-node serendipity
// hexahedral mesh of a box — the paper's "higher order elements" future
// work; the coarsening and solver pipeline is element-order agnostic.
func NewStructuredHex20Mesh(nx, ny, nz int, lx, ly, lz float64, matFn func(Vec3) int) *Mesh {
	return mesh.StructuredHex20(nx, ny, nz, lx, ly, lz, matFn)
}

// HexMeshToTets splits every hexahedron of a Hex8 mesh into six positively
// oriented tetrahedra (materials inherited), producing a simplicial fine
// grid for the solver.
func HexMeshToTets(m *Mesh) *Mesh { return mesh.HexToTets(m) }

// NewConstraints returns an empty Dirichlet constraint set.
func NewConstraints() *Constraints { return fem.NewConstraints() }

// NewProblem couples a mesh with materials (indexed by the mesh's material
// ids). bbar enables the mean-dilatation element for near-incompressible
// materials.
func NewProblem(m *Mesh, models []Model, bbar bool) *Problem {
	return fem.NewProblem(m, models, bbar)
}

// TableOneMaterials returns the paper's Table 1 database: index 0 the
// "soft" Neo-Hookean rubber, index 1 the "hard" J2-plastic steel.
func TableOneMaterials() []Model { return material.Database() }

// HierarchyKind selects the coarse-grid construction algorithm.
type HierarchyKind int

const (
	// GeometricMIS is the paper's algorithm: MIS coarsening with geometric
	// heuristics, Delaunay remeshing, linear tetrahedral restriction.
	GeometricMIS HierarchyKind = iota
	// SmoothedAggregation is the Vaněk/Mandel/Brezina alternative the
	// paper names as future work (reference [25]); the hierarchy is built
	// algebraically from the first assembled operator with rigid body
	// modes, so it becomes available at the first SolveLinear /
	// SolveNonlinear call rather than at NewSolver.
	SmoothedAggregation
)

// Options configures a Solver.
type Options struct {
	// Coarsen controls the mesh-setup phase (MIS coarsening).
	Coarsen CoarsenOptions
	// MG controls the multigrid preconditioner.
	MG MGOptions
	// Hierarchy selects between the paper's geometric MIS coarsening
	// (default) and smoothed aggregation.
	Hierarchy HierarchyKind
	// RTol is the relative residual tolerance of linear solves
	// (default 1e-4, the paper's first-solve tolerance).
	RTol float64
	// MaxIters bounds the Krylov iterations (default 1000).
	MaxIters int
}

func (o Options) withDefaults() Options {
	if o.RTol == 0 {
		o.RTol = 1e-4
	}
	if o.MaxIters == 0 {
		o.MaxIters = 1000
	}
	return o
}

// Solver owns the mesh-setup product: the grid hierarchy and restriction
// operators for one mesh + constraint set. It can then solve any number of
// linear systems (or Newton iterations) assembled on that mesh.
type Solver struct {
	Mesh *Mesh
	Hier *Hierarchy
	Opts Options

	cons   *Constraints
	dofMap *fem.DofMap
	rs     []*sparse.CSR
}

// NewSolver runs the mesh setup: coarsening, remeshing and restriction
// construction (the Prometheus phase of Figure 10). With
// Options.Hierarchy == SmoothedAggregation the restriction chain is
// instead built algebraically from the first assembled operator.
func NewSolver(m *Mesh, cons *Constraints, opts Options) (*Solver, error) {
	opts = opts.withDefaults()
	// Homogeneous variant of the constraints for increments/corrections.
	zero := fem.NewConstraints()
	for d := range cons.Fixed {
		zero.FixDof(d, 0)
	}
	dm := zero.NewDofMap(m.NumDOF())
	s := &Solver{Mesh: m, Opts: opts, cons: cons, dofMap: dm}
	if opts.Hierarchy == SmoothedAggregation {
		return s, nil // restrictions built lazily from the first operator
	}
	h, err := core.Coarsen(m, opts.Coarsen)
	if err != nil {
		return nil, fmt.Errorf("prometheus: mesh setup: %w", err)
	}
	s.Hier = h
	for l := 1; l < h.NumLevels(); l++ {
		r := h.Grids[l].R
		if l == 1 {
			r = multigrid.CompressCols(r, dm.Full2Red, dm.NumFree())
		}
		s.rs = append(s.rs, r)
	}
	return s, nil
}

// NumLevels returns the number of grids in the hierarchy (for smoothed
// aggregation, the number of operators once the chain has been built).
func (s *Solver) NumLevels() int {
	if s.Hier == nil {
		return len(s.rs) + 1
	}
	return s.Hier.NumLevels()
}

// Result reports a linear solve.
type Result struct {
	Iterations int
	Residuals  []float64
	Converged  bool
	SolveFlops int64
	SetupFlops int64
	Levels     int
}

// Preconditioner builds the multigrid preconditioner for a reduced
// operator (the per-matrix setup phase: Galerkin products, block
// factorizations). For SmoothedAggregation hierarchies the restriction
// chain is built from the first operator seen and reused afterwards.
// Geometric hierarchies on node-aligned constraint sets (every vertex
// fully free or fully fixed) re-block a scalar tangent into 3x3-node BSR
// before building the hierarchy; Options.MG.Storage overrides the choice.
func (s *Solver) Preconditioner(kred Operator) (*multigrid.MG, error) {
	if s.Opts.Hierarchy == SmoothedAggregation && s.rs == nil {
		kc, ok := sparse.TryCSR(kred)
		if !ok {
			return nil, fmt.Errorf("prometheus: aggregation setup needs an assembled fine matrix, not a matrix-free operator")
		}
		b := aggregation.RigidBodyModes(s.Mesh.Coords, s.dofMap.Full2Red, s.dofMap.NumFree())
		rs, err := aggregation.BuildRestrictions(kc, b, aggregation.Options{})
		if err != nil {
			return nil, fmt.Errorf("prometheus: aggregation setup: %w", err)
		}
		s.rs = rs
	}
	if s.Opts.Hierarchy == GeometricMIS && s.dofMap.NodeAligned(3) {
		kred = sparse.AutoBlockOp(kred, 3)
	}
	return multigrid.New(kred, s.rs, s.Opts.MG)
}

// ReduceSystem eliminates the Dirichlet-constrained dofs from a
// full-numbering stiffness matrix and load vector, returning the reduced
// operator and right-hand side FPCG actually solves. It exposes the first
// half of SolveLinear so long-running callers (the serve layer) can split
// the solve into cacheable setup and per-request iteration while staying
// bitwise identical to SolveLinear.
func (s *Solver) ReduceSystem(k *CSR, f []float64) (*CSR, []float64) {
	return s.cons.Reduce(k, f, s.dofMap)
}

// ExpandSolution scatters a reduced-system solution back to the full dof
// numbering with the prescribed Dirichlet values in place — the second
// half of SolveLinear. The input x is not modified.
func (s *Solver) ExpandSolution(x []float64) []float64 {
	u := make([]float64, s.Mesh.NumDOF())
	s.cons.Expand(x, s.dofMap, u)
	return u
}

// Fingerprint returns the deterministic content hash of this solver's
// mesh, constraint set and coarsening options (core.Fingerprint). Two
// solvers with equal fingerprints build bit-identical hierarchies, so the
// hash is a sound key for hierarchy caching.
func (s *Solver) Fingerprint() string {
	return core.Fingerprint(s.Mesh, s.cons.Fixed, s.Opts.Coarsen)
}

// MatrixFreeSystem builds the reduced linear system in matrix-free form:
// an element-by-element operator over the free dofs (no assembled
// fine-grid matrix anywhere) plus the reduced right-hand side — the
// storage-mode-"mf" counterpart of assembling a stiffness and calling
// ReduceSystem. Pair the returned operator with
// Options.MG.Storage = StorageMatrixFree so the hierarchy
// Galerkin-assembles its first coarse level directly from the element
// stiffnesses.
func (s *Solver) MatrixFreeSystem(p *Problem, f []float64) (Operator, []float64, error) {
	u := make([]float64, s.Mesh.NumDOF())
	op, err := fem.NewEBEOperator(p, u, s.cons, s.dofMap)
	if err != nil {
		return nil, nil, fmt.Errorf("prometheus: matrix-free setup: %w", err)
	}
	fred := s.dofMap.RestrictVec(f)
	cf := op.ConstraintForce()
	for i := range fred {
		fred[i] -= cf[i]
	}
	return op, fred, nil
}

// SolveReduced solves the already-reduced system kred·x = fred with the
// multigrid-preconditioned FPCG and returns the full-length displacement
// with the prescribed values in place — the storage-agnostic core of
// SolveLinear, and the solve entry point for matrix-free systems built
// with MatrixFreeSystem.
func (s *Solver) SolveReduced(kred Operator, fred []float64) ([]float64, *Result, error) {
	mg, err := s.Preconditioner(kred)
	if err != nil {
		return nil, nil, fmt.Errorf("prometheus: matrix setup: %w", err)
	}
	x := make([]float64, kred.Rows())
	res := krylov.FPCG(kred, fred, x, mg, s.Opts.RTol, s.Opts.MaxIters)
	u := make([]float64, s.Mesh.NumDOF())
	s.cons.Expand(x, s.dofMap, u)
	out := &Result{
		Iterations: res.Iterations,
		Residuals:  res.Residuals,
		Converged:  res.Converged,
		SolveFlops: res.Flops + mg.Flops(),
		SetupFlops: mg.SetupFlops,
		Levels:     mg.NumLevels(),
	}
	if !res.Converged {
		return u, out, fmt.Errorf("prometheus: linear solve did not reach rtol=%g in %d iterations",
			s.Opts.RTol, res.Iterations)
	}
	return u, out, nil
}

// SolveLinear solves K·u = f where K and f are assembled on the full dof
// numbering of the mesh and the solver's constraints prescribe u on the
// Dirichlet set. The returned u is full-length with the prescribed values
// in place.
func (s *Solver) SolveLinear(k *CSR, f []float64) ([]float64, *Result, error) {
	kred, fred := s.cons.Reduce(k, f, s.dofMap)
	return s.SolveReduced(kred, fred)
}

// SolveNonlinear runs the paper's Newton strategy on a problem assembled
// over this solver's mesh: the constraint values are ramped over
// cfg.Steps load steps with the dynamic linear tolerances of section 7.2.
// hardMat (-1 to disable) selects the material whose plastic fraction is
// tracked.
func (s *Solver) SolveNonlinear(p *Problem, cfg NewtonConfig, hardMat int) ([]float64, *NewtonStats, error) {
	factory := func(k sparse.Operator) (krylov.Preconditioner, error) {
		return s.Preconditioner(k)
	}
	return newton.Solve(p, s.cons, cfg, factory, hardMat)
}

// VertexReduction reports the per-level vertex counts and reduction ratios
// of the geometric hierarchy (the Figure 7 statistics); nil for smoothed
// aggregation hierarchies, which carry no meshes.
func (s *Solver) VertexReduction() ([]int, []float64) {
	if s.Hier == nil {
		return nil, nil
	}
	return s.Hier.VertexReduction()
}
