// Thinbody: the section 4.6 story (Figures 4-6). A maximal independent set
// taken naively on a thin plate lets one face decimate the other, losing
// the geometry on the coarse grid; the modified MIS graph — built from
// identified faces and vertex classifications — protects both faces. This
// example shows the face identification, the classification census, the
// MIS with and without the modification, and the effect on the solver.
//
//	go run ./examples/thinbody
package main

import (
	"fmt"
	"log"

	prometheus "prometheus"
	"prometheus/internal/geom"
	"prometheus/internal/graph"
	"prometheus/internal/mesh"
	"prometheus/internal/problems"
	"prometheus/internal/topo"
)

func main() {
	// A 14x14x1-element plate, 0.35 thick: elements span the full
	// thickness, so top vertices are graph-adjacent to bottom vertices.
	m := problems.ThinSlab(14, 14, 0.35)
	fmt.Printf("thin slab: %d vertices, %d elements\n", m.NumVerts(), m.NumElems())

	// Face identification (Figure 3) and vertex classification.
	facets := m.BoundaryFacets()
	adj := mesh.FacetAdjacency(facets)
	faceID, nFaces := topo.IdentifyFaces(facets, adj, topo.DefaultTOL)
	cls := topo.Classify(m.NumVerts(), facets, faceID)
	census := map[int]int{}
	for _, r := range cls.Rank {
		census[r]++
	}
	fmt.Printf("faces identified: %d; vertices: %d interior, %d surface, %d edge, %d corner\n",
		nFaces, census[topo.RankInterior], census[topo.RankSurface],
		census[topo.RankEdge], census[topo.RankCorner])

	g := m.NodeGraph()
	mg := cls.ModifiedGraph(g)
	fmt.Printf("modified graph: %d -> %d edges (deleted %d cross-face edges)\n",
		g.NumEdges(), mg.NumEdges(), g.NumEdges()-mg.NumEdges())

	cover := func(set []int) (top, bottom int) {
		for _, v := range set {
			if m.Coords[v].Z > 0.34 {
				top++
			}
			if m.Coords[v].Z < 0.01 {
				bottom++
			}
		}
		return
	}
	plain := graph.MIS(g, graph.NaturalOrder(g.N), nil, nil)
	order := graph.RankedOrder(cls.Rank, graph.NaturalOrder(g.N))
	protected := graph.MIS(mg, order, cls.Rank, cls.Immortal())
	pt, pb := cover(plain)
	mt, mb := cover(protected)
	fmt.Printf("plain MIS:     %4d vertices (top %d / bottom %d)  <- one face can vanish\n", len(plain), pt, pb)
	fmt.Printf("modified MIS:  %4d vertices (top %d / bottom %d)  <- both faces kept\n", len(protected), mt, mb)

	// Solver consequence: clamp one edge, bend the plate, solve with the
	// automatic hierarchy (which uses the modified graph internally).
	cons := prometheus.NewConstraints()
	load := make([]float64, m.NumDOF())
	for v, p := range m.Coords {
		if p.X == 0 {
			cons.FixVert(v, 0, 0, 0)
		}
		if geom.ApproxEq(p.X, 14, 1e-9) {
			load[3*v+2] = -1e-4
		}
	}
	solver, err := prometheus.NewSolver(m, cons, prometheus.Options{RTol: 1e-6})
	if err != nil {
		log.Fatal(err)
	}
	p := prometheus.NewProblem(m, []prometheus.Model{prometheus.LinearElastic{E: 1, Nu: 0.3}}, false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		log.Fatal(err)
	}
	_, res, err := solver.SolveLinear(k, load)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plate bending solved in %d MG-PCG iterations on %d levels\n",
		res.Iterations, res.Levels)
}
