// Scaling: the section 7.1 scalability study in miniature — a series of
// model problems with constant dof per simulated rank, reporting iteration
// counts, the phase breakdown, and the machine-modeled cluster efficiency
// decomposition of section 6 (the content of Table 2 and Figures 10-12).
//
//	go run ./examples/scaling [-maxk n]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"prometheus/internal/experiments"
	"prometheus/internal/multigrid"
)

func main() {
	maxK := flag.Int("maxk", 2, "largest series index (3 takes ~20s)")
	flag.Parse()

	runs, err := experiments.RunSeries(*maxK, multigrid.Options{})
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if err := experiments.Table2(w, runs); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(w)
	if err := experiments.Fig10(w, runs); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(w)
	if err := experiments.Fig11(w, runs); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(w)
	if err := experiments.Fig12(w, runs); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(w)
	if err := experiments.Headline(w, runs); err != nil {
		log.Fatal(err)
	}
}
