// Spheres: the paper's section 7 model problem in miniature — an octant of
// a layered "steel-belted radial inside a rubber cube", crushed from the
// top over ten displacement steps with full Newton and the multigrid
// preconditioned linear solver. Reports the Figure 13 quantities: plastic
// fraction per step and PCG iterations per Newton solve.
//
//	go run ./examples/spheres [-layers n] [-k n] [-steps n]
package main

import (
	"flag"
	"fmt"
	"log"

	prometheus "prometheus"
	"prometheus/internal/experiments"
	"prometheus/internal/material"
	"prometheus/internal/problems"
)

func main() {
	layers := flag.Int("layers", 5, "alternating hard/soft layers (paper: 17)")
	k := flag.Int("k", 1, "elements through each layer")
	steps := flag.Int("steps", 10, "displacement load steps")
	flag.Parse()

	cfg := problems.SpheresConfig{
		Layers: *layers, ElemsPerLayer: *k,
		CoreElems: 2 * *k, OuterElems: 2 * *k,
	}
	s := problems.NewSpheresConfig(cfg)
	// Keep the shell-bending yield regime of the paper's 17-layer geometry
	// when running with fewer, thicker layers.
	s.Models[material.MatHard] = material.J2Plasticity{
		E: 1, Nu: 0.3, SigmaY: experiments.ScaledYieldStress(cfg), H: 0.002,
	}
	fmt.Printf("spheres octant: %d layers, %d elements, %d dof, %.0f%% hard material\n",
		cfg.Layers, s.Mesh.NumElems(), s.Mesh.NumDOF(), 100*s.HardFraction())

	solver, err := prometheus.NewSolver(s.Mesh, s.Cons, prometheus.Options{})
	if err != nil {
		log.Fatal(err)
	}
	counts, _ := solver.VertexReduction()
	fmt.Printf("hierarchy: %d levels, vertices %v\n", solver.NumLevels(), counts)

	// B-bar elements for the nearly incompressible rubber (nu = 0.49).
	p := prometheus.NewProblem(s.Mesh, s.Models, true)
	_, stats, err := solver.SolveNonlinear(p,
		prometheus.NewtonConfig{Steps: *steps}, s.HardMat)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nstep  newton  plastic  PCG per solve")
	for i, ss := range stats.Steps {
		its := ""
		for j, n := range ss.PCGIters {
			if j > 0 {
				its += "+"
			}
			its += fmt.Sprintf("%d", n)
		}
		fmt.Printf("%4d  %6d  %6.1f%%  %s\n",
			i+1, ss.NewtonIters, 100*ss.PlasticFrac, its)
	}
	fmt.Printf("\nfirst linear solve: %d PCG iterations (paper: 29 at the 80k-dof base size)\n",
		stats.FirstSolveIters)
	fmt.Printf("totals: %d Newton iterations, %d PCG iterations\n",
		stats.TotalNewton, stats.TotalPCG)
}
