// Quickstart: solve a linear elasticity problem on a cube with the
// multigrid solver, using only the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	prometheus "prometheus"
)

func main() {
	// 1. Build a mesh: a 10x10x10-element unit cube (3993 dof).
	m := prometheus.NewStructuredHexMesh(10, 10, 10, 1, 1, 1, nil)

	// 2. Boundary conditions: clamp the bottom face, load the top face.
	cons := prometheus.NewConstraints()
	load := make([]float64, m.NumDOF())
	for v, p := range m.Coords {
		if p.Z == 0 {
			cons.FixVert(v, 0, 0, 0)
		}
		if math.Abs(p.Z-1) < 1e-9 {
			load[3*v+2] = -0.001 // downward surface load
		}
	}

	// 3. Mesh setup: the solver coarsens the mesh automatically with the
	// MIS/Delaunay pipeline of the paper — the user supplies only the fine
	// grid.
	solver, err := prometheus.NewSolver(m, cons, prometheus.Options{RTol: 1e-8})
	if err != nil {
		log.Fatal(err)
	}
	counts, _ := solver.VertexReduction()
	fmt.Printf("grid hierarchy: %d levels, vertices per level %v\n",
		solver.NumLevels(), counts)

	// 4. Assemble the stiffness matrix (steel-like linear elasticity).
	prob := prometheus.NewProblem(m, []prometheus.Model{
		prometheus.LinearElastic{E: 200e9, Nu: 0.3},
	}, false)
	k, _, err := prob.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		log.Fatal(err)
	}

	// 5. Solve with CG preconditioned by one full multigrid cycle.
	u, res, err := solver.SolveLinear(k, load)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved %d dof in %d MG-PCG iterations (%.2g Mflop)\n",
		m.NumDOF(), res.Iterations, float64(res.SolveFlops)/1e6)

	// Report the centre-top deflection.
	for v, p := range m.Coords {
		if math.Abs(p.X-0.5) < 1e-9 && math.Abs(p.Y-0.5) < 1e-9 && math.Abs(p.Z-1) < 1e-9 {
			fmt.Printf("top-centre deflection: %.3e\n", u[3*v+2])
		}
	}
}
