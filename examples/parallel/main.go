// Parallel: the paper's distributed algorithms on the simulated
// message-passing runtime — the rank-based parallel maximal independent
// set of section 4.2, the seeded parallel face identification of
// section 4.5, and a row-partitioned matrix-vector product with halo
// exchange (the PETSc kernel pattern), with the per-rank communication
// volumes the efficiency model consumes.
//
//	go run ./examples/parallel [-ranks n]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"prometheus/internal/fem"
	"prometheus/internal/graph"
	"prometheus/internal/material"
	"prometheus/internal/mesh"
	"prometheus/internal/par"
	"prometheus/internal/sparse"
	"prometheus/internal/topo"
)

func main() {
	ranks := flag.Int("ranks", 8, "simulated processor count")
	flag.Parse()

	m := mesh.StructuredHex(10, 10, 10, 1, 1, 1, nil)
	g := m.NodeGraph()
	owner := graph.RCB(m.Coords, *ranks) // the SMP-style geometric partition
	fmt.Printf("mesh: %d vertices, %d elements; %d simulated ranks (RCB partition)\n",
		m.NumVerts(), m.NumElems(), *ranks)

	// --- Section 4.2: parallel MIS with topological ranks.
	cls := topo.Reclassify(m, topo.DefaultTOL)
	order := graph.RankedOrder(cls.Rank, graph.NaturalOrder(g.N))
	mg := cls.ModifiedGraph(g)
	serial := graph.MIS(mg, order, cls.Rank, cls.Immortal())
	parallel := par.ParallelMIS(par.NewComm(*ranks), mg, owner, order, cls.Rank, cls.Immortal())
	fmt.Printf("MIS: serial %d vertices, parallel %d vertices (both maximal: %v, %v)\n",
		len(serial), len(parallel),
		graph.IsMaximal(mg, serial), graph.IsMaximal(mg, parallel))

	// --- Section 4.5: parallel face identification.
	facets := m.BoundaryFacets()
	adj := mesh.FacetAdjacency(facets)
	_, nSerial := topo.IdentifyFaces(facets, adj, topo.DefaultTOL)
	fo := topo.FacetOwnerFromVerts(facets, owner)
	_, nParallel := topo.ParallelIdentifyFaces(par.NewComm(*ranks), facets, adj, fo, topo.DefaultTOL)
	fmt.Printf("face identification: serial %d faces, parallel %d faces\n", nSerial, nParallel)

	// --- Distributed SpMV with halo exchange and measured traffic.
	p := fem.NewProblem(m, []material.Model{material.LinearElastic{E: 1, Nu: 0.3}}, false)
	k, _, err := p.AssembleTangent(make([]float64, m.NumDOF()))
	if err != nil {
		log.Fatal(err)
	}
	dofOwner := make([]int, m.NumDOF())
	for v := 0; v < m.NumVerts(); v++ {
		for c := 0; c < 3; c++ {
			dofOwner[3*v+c] = owner[v]
		}
	}
	halo := par.NewHalo(k, dofOwner, *ranks)
	x := make([]float64, m.NumDOF())
	for i := range x {
		x[i] = float64(i%11) - 5
	}
	y := make([]float64, m.NumDOF())
	comm := par.NewComm(*ranks)
	counters := comm.RunCounted(func(r *par.Rank) {
		// Each rank holds only its own entries of x; the halo exchange
		// fills the ghosts it needs.
		xl := make([]float64, len(x))
		for i := range x {
			if dofOwner[i] == r.ID() {
				xl[i] = x[i]
			}
		}
		halo.MulVec(r, k, xl, y)
	})
	// Verify against the serial product.
	want := make([]float64, m.NumDOF())
	k.MulVec(x, want)
	diff := 0.0
	for i := range want {
		d := y[i] - want[i]
		diff += d * d
	}
	fmt.Printf("distributed SpMV: error vs serial = %.2g\n", diff)

	fmt.Println("\nrank  flops     bytes-sent  msgs  ghosts")
	for r := 0; r < *ranks; r++ {
		fmt.Printf("%4d  %8d  %10d  %4d  %6d\n",
			r, counters.Flops[r], counters.BytesSent[r], counters.MsgsSent[r], halo.GhostCount(r))
	}
	fmt.Printf("load balance (flops): %.2f\n", loadBalance(counters.Flops))

	// --- The same product through the node-granular blocked halo: the
	// tangent re-blocked to 3x3-node BSR (the PETSc BAIJ analogue), ghosts
	// exchanged one node index + three values at a time. The result is
	// bitwise identical; the index traffic drops by 3x.
	kb, err := sparse.FromCSR(k, 3)
	if err != nil {
		log.Fatal(err)
	}
	bhalo := par.NewBlockHalo(kb, owner, *ranks)
	yb := make([]float64, m.NumDOF())
	bcounters := comm.RunCounted(func(r *par.Rank) {
		xl := make([]float64, len(x))
		for v := 0; v < m.NumVerts(); v++ {
			if owner[v] == r.ID() {
				copy(xl[3*v:3*v+3], x[3*v:3*v+3])
			}
		}
		bhalo.MulVecBSR(r, kb, xl, yb)
	})
	bitwise := true
	for i := range want {
		if math.Float64bits(yb[i]) != math.Float64bits(want[i]) {
			bitwise = false
			break
		}
	}
	var msgs, bmsgs int64
	for r := 0; r < *ranks; r++ {
		msgs += counters.MsgsSent[r]
		bmsgs += bcounters.MsgsSent[r]
	}
	fmt.Printf("\nblocked SpMV (BSR + node-granular halo): bitwise identical to serial = %v\n", bitwise)
	fmt.Printf("halo messages: scalar %d, blocked %d; ghost volume unchanged, index traffic /3\n", msgs, bmsgs)
}

func loadBalance(w []int64) float64 {
	var sum, max int64
	for _, v := range w {
		sum += v
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return 1
	}
	return float64(sum) / float64(len(w)) / float64(max)
}
